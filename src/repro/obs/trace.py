"""Request-scoped causal tracing: propagated context + tail-based sampling.

A *trace* ties every telemetry artifact a request produces — span events,
engine iteration lines, fault fires, the final explain record — to one
``trace_id``, across the threads the request crosses (submitter, queue,
worker) and, via :meth:`TraceContext.to_env`, across future process
boundaries. The design splits three concerns:

* **Context propagation** (:class:`TraceContext`, :func:`use`,
  :func:`current`) — an immutable ``(trace_id, span_id)`` pair carried in
  a thread-local. :mod:`repro.obs.spans` consults it when a thread's own
  span stack is empty, so the first span a worker opens for a request
  parents under the request's *root* span instead of floating free, and
  :mod:`repro.obs.journal` stamps every emitted line with the active
  trace id.
* **Collection** (:func:`install_collector`, :func:`dispatch`) — a
  process-wide hook fed every journal-bound event that carries a trace
  id, whether or not a journal file is open. The query service installs
  a :class:`TraceStore` here so live traces are inspectable without
  ``--trace``.
* **Tail-based sampling** (:class:`TailSampler`, :class:`TraceStore`) —
  the store buffers events per in-flight trace under hard caps and
  decides retention only when the outcome is known: slow, degraded,
  failed, or poisoned traces are always kept; healthy traffic is
  head-sampled (a deterministic 1-in-``head_every`` choice hashed from
  the trace id). Memory stays bounded by evicting retained head samples
  before retained problem traces, never the other way around.

Ids are process-unique: a per-process nonce (so two cooperating
processes — the future sharded backend — cannot collide) plus a locked
counter. Nothing here reads the wall clock or global RNG state.
"""

from __future__ import annotations

import os
import threading
import zlib
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional

ENV_TRACE_ID = "REPRO_TRACE_ID"
ENV_SPAN_ID = "REPRO_TRACE_SPAN"

#: Retention reasons a :class:`TailSampler` decision may carry.
RETAIN_DEGRADED = "degraded"
RETAIN_FAILED = "failed"
RETAIN_SLOW = "slow"
RETAIN_SHED = "shed"
RETAIN_HEAD = "head"

_NONCE = os.urandom(4).hex()
_id_lock = threading.Lock()
_next_span = 0


def new_span_id() -> str:
    """A process-unique span id (nonce + locked counter)."""
    global _next_span
    with _id_lock:
        _next_span += 1
        n = _next_span
    return f"{_NONCE}{n:08x}"


def new_trace_id() -> str:
    """A fresh trace id (same shape as span ids, distinct sequence)."""
    return f"t{new_span_id()}"


@dataclass(frozen=True)
class TraceContext:
    """Immutable propagation unit: which trace, and which span owns work.

    ``span_id`` is the id new child spans (and synthetic events) parent
    under — for a freshly minted context it is the request's root span.
    """

    trace_id: str
    span_id: str

    def child(self, span_id: str) -> "TraceContext":
        """The same trace re-rooted under ``span_id``."""
        return TraceContext(self.trace_id, span_id)

    # -- serialization (dict for queues/journals, env for subprocesses) --
    def to_dict(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceContext":
        return cls(str(payload["trace_id"]), str(payload["span_id"]))

    def to_env(self) -> Dict[str, str]:
        """Environment form a child process re-enters via :meth:`from_env`."""
        return {ENV_TRACE_ID: self.trace_id, ENV_SPAN_ID: self.span_id}

    @classmethod
    def from_env(
        cls, environ: Optional[Dict[str, str]] = None
    ) -> Optional["TraceContext"]:
        env = os.environ if environ is None else environ
        trace_id = env.get(ENV_TRACE_ID)
        if not trace_id:
            return None
        return cls(trace_id, env.get(ENV_SPAN_ID) or trace_id)


def new_trace() -> TraceContext:
    """Mint a new trace with its root span id."""
    return TraceContext(new_trace_id(), new_span_id())


# ---------------------------------------------------------------------------
# Thread-local current context
# ---------------------------------------------------------------------------

_local = threading.local()


def current() -> Optional[TraceContext]:
    """The context active on this thread, if any."""
    return getattr(_local, "ctx", None)


def current_trace_id() -> Optional[str]:
    ctx = current()
    return None if ctx is None else ctx.trace_id


def set_current(ctx: Optional[TraceContext]) -> Optional[TraceContext]:
    """Install ``ctx`` on this thread; returns the prior context."""
    prior = current()
    _local.ctx = ctx
    return prior


@contextmanager
def use(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Scoped :func:`set_current`; ``use(None)`` is an inert passthrough."""
    if ctx is None:
        yield None
        return
    prior = set_current(ctx)
    try:
        yield ctx
    finally:
        set_current(prior)


# ---------------------------------------------------------------------------
# Collector hook: journal-bound events fan out here too
# ---------------------------------------------------------------------------

_collector: Optional[Callable[[Dict[str, Any]], None]] = None


def install_collector(fn: Callable[[Dict[str, Any]], None]) -> None:
    """Install the process-wide trace collector (one at a time)."""
    global _collector
    _collector = fn


def uninstall_collector(fn: Optional[Callable] = None) -> None:
    """Remove the collector (or only ``fn``, if it is still installed)."""
    global _collector
    if fn is None or _collector is fn:
        _collector = None


def dispatch(event: Dict[str, Any]) -> None:
    """Hand a trace-stamped event to the collector (no-op without one).

    Called by :func:`repro.obs.journal.emit` for every event that carries
    a ``trace`` field. A collector must never take the workload down:
    exceptions are swallowed here, at the boundary.
    """
    fn = _collector
    if fn is None or "trace" not in event:
        return
    try:
        fn(event)
    except Exception:  # repro: noqa RC004 — collector boundary: tracing must never break the traced workload
        pass


# ---------------------------------------------------------------------------
# Tail-based sampling
# ---------------------------------------------------------------------------


class TailSampler:
    """Retention policy decided at end of request (tail), not at start.

    ``decide`` returns the retention reason, or ``None`` to drop:

    * degraded / failed outcomes and shed requests are always retained;
    * anything slower than ``slow_ms`` is retained;
    * remaining (healthy) traffic is *head*-sampled — a deterministic
      1-in-``head_every`` choice hashed from the trace id, so the same
      trace id always gets the same verdict regardless of which process
      asks.
    """

    def __init__(
        self, slow_ms: Optional[float] = 500.0, head_every: int = 16
    ) -> None:
        if head_every < 1:
            raise ValueError(f"head_every must be >= 1, got {head_every}")
        self.slow_ms = slow_ms
        self.head_every = head_every

    def head_sampled(self, trace_id: str) -> bool:
        """Deterministic 1-in-``head_every`` verdict for healthy traces."""
        if self.head_every == 1:
            return True
        digest = zlib.crc32(trace_id.encode("utf-8"))
        return digest % self.head_every == 0

    def decide(
        self,
        trace_id: str,
        status: str,
        latency_ms: Optional[float] = None,
        shed: bool = False,
    ) -> Optional[str]:
        """The retention reason for one finished trace, or None (drop)."""
        if status == "failed":
            return RETAIN_FAILED
        if status == "degraded":
            return RETAIN_DEGRADED
        if shed:
            return RETAIN_SHED
        if (
            self.slow_ms is not None
            and latency_ms is not None
            and latency_ms >= self.slow_ms
        ):
            return RETAIN_SLOW
        return RETAIN_HEAD if self.head_sampled(trace_id) else None


@dataclass
class TraceRecord:
    """One finished, retained trace in a :class:`TraceStore`."""

    trace_id: str
    status: str
    reason: str
    latency_ms: Optional[float]
    events: List[Dict[str, Any]]
    truncated: int = 0
    explain: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "status": self.status,
            "reason": self.reason,
            "latency_ms": self.latency_ms,
            "events": len(self.events),
            "truncated": self.truncated,
        }


class TraceStore:
    """Bounded in-memory trace retention driven by a :class:`TailSampler`.

    Lifecycle per trace: :meth:`begin` opens an in-flight buffer,
    :meth:`record` (the collector hook) appends stamped events up to
    ``max_events_per_trace`` (overflow is counted, not stored), and
    :meth:`finish` asks the sampler whether to keep the buffer. Retained
    traces live in an insertion-ordered map capped at ``capacity``;
    eviction removes the oldest *head-sampled* trace first, so problem
    traces (degraded/failed/slow/shed) are only displaced by newer
    problem traces once head samples are exhausted — the bounded-memory
    guarantee the chaos tests assert.
    """

    def __init__(
        self,
        sampler: Optional[TailSampler] = None,
        capacity: int = 256,
        max_events_per_trace: int = 512,
        max_in_flight: int = 1024,
    ) -> None:
        self.sampler = sampler or TailSampler()
        self.capacity = capacity
        self.max_events_per_trace = max_events_per_trace
        self.max_in_flight = max_in_flight
        self._lock = threading.Lock()
        self._in_flight: "OrderedDict[str, List[Dict[str, Any]]]" = OrderedDict()
        self._truncated: Dict[str, int] = {}
        self._retained: "OrderedDict[str, TraceRecord]" = OrderedDict()
        self._counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _inc(self, key: str, amount: int = 1) -> None:
        self._counts[key] = self._counts.get(key, 0) + amount

    def begin(self, trace_id: str) -> None:
        """Open the in-flight buffer for a just-minted trace."""
        with self._lock:
            if len(self._in_flight) >= self.max_in_flight:
                # A leaked begin() (caller never finished) must not grow
                # without bound; drop the stalest in-flight buffer.
                self._in_flight.popitem(last=False)
                self._inc("abandoned")
            self._in_flight[trace_id] = []
            self._truncated.pop(trace_id, None)

    def record(self, event: Dict[str, Any]) -> None:
        """Collector hook: buffer one stamped event for its trace."""
        trace_id = event.get("trace")
        if not isinstance(trace_id, str):
            return
        with self._lock:
            buf = self._in_flight.get(trace_id)
            if buf is None:
                return
            if len(buf) >= self.max_events_per_trace:
                self._truncated[trace_id] = (
                    self._truncated.get(trace_id, 0) + 1
                )
                self._inc("truncated")
                return
            buf.append(event)

    def finish(
        self,
        trace_id: str,
        status: str,
        latency_ms: Optional[float] = None,
        shed: bool = False,
        explain: Optional[Dict[str, Any]] = None,
    ) -> Optional[str]:
        """Close a trace; returns the retention reason or None (dropped)."""
        reason = self.sampler.decide(trace_id, status, latency_ms, shed)
        with self._lock:
            events = self._in_flight.pop(trace_id, [])
            truncated = self._truncated.pop(trace_id, 0)
            if reason is None:
                self._inc("dropped")
                return None
            self._retained[trace_id] = TraceRecord(
                trace_id=trace_id,
                status=status,
                reason=reason,
                latency_ms=latency_ms,
                events=events,
                truncated=truncated,
                explain=explain,
            )
            self._retained.move_to_end(trace_id)
            self._inc("retained")
            self._inc(f"retained_{reason}")
            self._evict_locked()
        return reason

    def _evict_locked(self) -> None:
        while len(self._retained) > self.capacity:
            victim = None
            for tid, rec in self._retained.items():  # oldest first
                if rec.reason == RETAIN_HEAD:
                    victim = tid
                    break
            if victim is None:
                victim = next(iter(self._retained))
            del self._retained[victim]
            self._inc("evicted")

    # ------------------------------------------------------------------
    def get(self, trace_id: str) -> Optional[TraceRecord]:
        with self._lock:
            return self._retained.get(trace_id)

    def trace_ids(self) -> List[str]:
        with self._lock:
            return list(self._retained)

    def records(self) -> List[TraceRecord]:
        with self._lock:
            return list(self._retained.values())

    def recent(self, n: int = 5) -> List[Dict[str, Any]]:
        """Newest retained traces, summarized for /statz."""
        with self._lock:
            newest = list(self._retained.values())[-n:]
        return [rec.to_dict() for rec in reversed(newest)]

    def stats(self) -> Dict[str, int]:
        with self._lock:
            buffered = sum(len(b) for b in self._in_flight.values())
            stored = sum(len(r.events) for r in self._retained.values())
            out = dict(self._counts)
            # The container sizes must come from the same critical
            # section as the sums above, or a concurrent finish() makes
            # the snapshot internally inconsistent.
            out.update(
                in_flight=len(self._in_flight),
                traces=len(self._retained),
                events=stored,
                buffered_events=buffered,
            )
        return out

    def clear(self) -> None:
        with self._lock:
            self._in_flight.clear()
            self._truncated.clear()
            self._retained.clear()
            self._counts.clear()
