"""Cross-run comparison and regression detection over JSONL journals.

A journal (or a committed baseline distilled from one) reduces to a
:class:`RunSummary`: an identity key (graph, query, source, seed, git SHA),
per-phase wall times aggregated from span events, and the final metrics
snapshot (flattened to numbers). Two summaries aligned by key compare into
a list of :class:`Delta` records; :class:`Thresholds` decides which deltas
count as regressions:

* **time** — a phase's total wall time grew by more than ``time_pct``;
* **counter** — a work counter (``engine.*``: edges scanned, iterations,
  redundant relaxations) grew by more than ``counter_pct``. These are
  deterministic for a fixed graph/seed, so CI can gate them tightly even
  when wall times are noisy across machines;
* **quality** — a paper-grounded ``quality.*`` gauge moved the wrong way:
  fractions (CG edge fraction, phase-1 precision, certified share) by more
  than ``quality_drop`` absolute, counts by more than ``counter_pct``.

Baselines serialize as small JSON files (``schema: repro-obs-baseline/v1``)
suitable for committing under ``benchmarks/baselines/``; a directory of
them acts as a baseline set that :func:`align` matches against by key.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs import quality as obs_quality
from repro.obs.export import EventsOrPath, manifest_of
from repro.obs.journal import iter_events
from repro.resilience.atomic import atomic_open

BASELINE_SCHEMA = "repro-obs-baseline/v1"

#: Manifest fields that must agree for two runs to be comparable.
#: ``graph_fingerprint`` is the content digest of the loaded graph — two
#: runs on drifted graphs are a different experiment, not a regression.
KEY_FIELDS = ("graph", "query", "source", "seed", "graph_fingerprint")


@dataclass
class RunSummary:
    """One run, reduced to what cross-run comparison needs."""

    source: str
    key: Dict[str, Any] = field(default_factory=dict)
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def quality(self) -> Dict[str, float]:
        return {
            k: v for k, v in self.metrics.items()
            if k.startswith(obs_quality.PREFIX)
        }

    def label(self) -> str:
        parts = [
            str(self.key.get(f)) for f in ("graph", "query", "source")
            if self.key.get(f) is not None
        ]
        return "/".join(parts) if parts else Path(self.source).stem


@dataclass
class Delta:
    """One compared quantity between a baseline and a new run."""

    name: str
    kind: str  # "time" | "counter" | "quality"
    base: Optional[float]
    new: Optional[float]
    pct: Optional[float]  # percent change vs base, None when base is 0/None
    regressed: bool = False
    note: str = ""


@dataclass(frozen=True)
class Thresholds:
    """When a delta becomes a regression (all one-sided, worse-direction)."""

    time_pct: float = 15.0
    counter_pct: float = 10.0
    quality_drop: float = 0.01

    @classmethod
    def from_args(cls, args: Any) -> "Thresholds":
        """Build from CLI args, falling back to the defaults."""
        kwargs = {}
        for attr, opt in (
            ("time_pct", "threshold_time_pct"),
            ("counter_pct", "threshold_counter_pct"),
            ("quality_drop", "threshold_quality_drop"),
        ):
            value = getattr(args, opt, None)
            if value is not None:
                kwargs[attr] = float(value)
        return cls(**kwargs)


def _flatten_metrics(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """Final metrics snapshot -> flat name -> number map.

    Histograms contribute ``<name>.count`` and ``<name>.sum``; streaming
    histograms (:mod:`repro.obs.live.hist`) additionally contribute their
    instant percentiles, so latency distributions participate in
    baselines and diffs. Everything non-numeric is dropped.
    """
    flat: Dict[str, float] = {}
    for name, value in snapshot.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            flat[name] = float(value)
        elif isinstance(value, dict):
            for part in ("count", "sum", "p50", "p90", "p95", "p99"):
                inner = value.get(part)
                if isinstance(inner, (int, float)):
                    flat[f"{name}.{part}"] = float(inner)
    return flat


def summarize_run(events: EventsOrPath, source: str = "") -> RunSummary:
    """Reduce a journal to its :class:`RunSummary`."""
    events = list(iter_events(events))
    manifest = manifest_of(events)
    key: Dict[str, Any] = {
        "seed": manifest.get("seed"),
        "git_sha": manifest.get("git_sha"),
        "graph": None,
        "query": None,
        "source": None,
        "graph_fingerprint": None,
    }
    if isinstance(manifest.get("experiment"), str):
        key["query"] = manifest["experiment"]

    phases: Dict[str, Dict[str, float]] = {}
    metrics: Dict[str, float] = {}
    for event in events:
        etype = event.get("type")
        if etype == "span":
            agg = phases.setdefault(
                str(event.get("name")), {"count": 0.0, "total_s": 0.0}
            )
            agg["count"] += 1
            agg["total_s"] += float(event.get("duration_s", 0.0))
        elif etype == "metrics":
            metrics = _flatten_metrics(event.get("metrics", {}))
        elif etype == "event":
            name = event.get("name")
            if name == "graph.loaded":
                key["graph"] = event.get("graph")
                if event.get("graph_fingerprint") is not None:
                    key["graph_fingerprint"] = event.get("graph_fingerprint")
            elif name in ("twophase.result", "cg.built"):
                key["query"] = event.get("query") or key["query"]
                if event.get("source") is not None:
                    key["source"] = event.get("source")
    if not source:
        source = str(manifest.get("journal_path") or "<events>")
    return RunSummary(source=source, key=key, phases=phases, metrics=metrics)


def to_baseline(summary: RunSummary) -> Dict[str, Any]:
    """A committed-baseline payload for ``summary``."""
    return {
        "schema": BASELINE_SCHEMA,
        "created": datetime.now(timezone.utc).isoformat(),
        "source": summary.source,
        "key": summary.key,
        "phases": summary.phases,
        "metrics": summary.metrics,
    }


def write_baseline(summary: RunSummary, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with atomic_open(path) as fh:
        json.dump(to_baseline(summary), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_baseline(path: Union[str, Path]) -> RunSummary:
    path = Path(path)
    payload = json.loads(path.read_text())
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path} is not a {BASELINE_SCHEMA} baseline "
            f"(schema={payload.get('schema')!r})"
        )
    return RunSummary(
        source=str(path),
        key=dict(payload.get("key", {})),
        phases={
            str(k): dict(v) for k, v in payload.get("phases", {}).items()
        },
        metrics={
            str(k): float(v)
            for k, v in payload.get("metrics", {}).items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        },
    )


def load_baselines(path: Union[str, Path]) -> List[RunSummary]:
    """One baseline file, or every ``*.json`` baseline in a directory."""
    path = Path(path)
    if path.is_dir():
        out = []
        for child in sorted(path.glob("*.json")):
            try:
                out.append(load_baseline(child))
            except (ValueError, json.JSONDecodeError):
                continue  # unrelated JSON living in the same directory
        return out
    return [load_baseline(path)]


def keys_match(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    """Whether two run keys describe the same experiment.

    Fields that are ``None`` on either side are ignored (a baseline may
    predate a key field); everything known on both sides must agree.
    ``git_sha`` is deliberately not compared — differing across runs is
    the whole point.
    """
    for field_name in KEY_FIELDS:
        va, vb = a.get(field_name), b.get(field_name)
        if va is not None and vb is not None and va != vb:
            return False
    return True


def align(
    summary: RunSummary, baselines: List[RunSummary]
) -> Optional[RunSummary]:
    """The baseline matching ``summary``'s key, or None."""
    for baseline in baselines:
        if keys_match(summary.key, baseline.key):
            return baseline
    return None


def graph_drifted(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    """Whether two run keys name *different versions* of the same graph.

    True when both sides carry a known ``graph_fingerprint`` and they
    disagree while every other key field matches — the cross-version case
    ``obs check``/``obs diff`` must skip-and-flag instead of reporting
    phantom regressions.
    """
    fa, fb = a.get("graph_fingerprint"), b.get("graph_fingerprint")
    if fa is None or fb is None or fa == fb:
        return False
    for field_name in KEY_FIELDS:
        if field_name == "graph_fingerprint":
            continue
        va, vb = a.get(field_name), b.get(field_name)
        if va is not None and vb is not None and va != vb:
            return False
    return True


def drift_skipped(
    summary: RunSummary, baselines: List[RunSummary]
) -> List[RunSummary]:
    """Baselines skipped purely because the graph content drifted."""
    return [b for b in baselines if graph_drifted(summary.key, b.key)]


def _pct(base: float, new: float) -> Optional[float]:
    if base == 0:
        return None
    return 100.0 * (new - base) / abs(base)


def compare(
    base: RunSummary,
    new: RunSummary,
    thresholds: Optional[Thresholds] = None,
) -> List[Delta]:
    """All comparable quantities of two runs, worst offenders first."""
    th = thresholds or Thresholds()
    deltas: List[Delta] = []

    for phase in sorted(set(base.phases) | set(new.phases)):
        b = base.phases.get(phase)
        n = new.phases.get(phase)
        if b is None or n is None:
            deltas.append(Delta(
                name=f"phase:{phase}", kind="time",
                base=None if b is None else b["total_s"],
                new=None if n is None else n["total_s"],
                pct=None, regressed=False,
                note="only in one run",
            ))
            continue
        pct = _pct(b["total_s"], n["total_s"])
        deltas.append(Delta(
            name=f"phase:{phase}", kind="time",
            base=b["total_s"], new=n["total_s"], pct=pct,
            regressed=pct is not None and pct > th.time_pct,
        ))

    shared = set(base.metrics) & set(new.metrics)
    for name in sorted(shared):
        b, n = base.metrics[name], new.metrics[name]
        bare = obs_quality.bare_name(name)
        if bare.startswith(obs_quality.PREFIX):
            deltas.append(_quality_delta(name, bare, b, n, th))
        elif bare.startswith("engine."):
            pct = _pct(b, n)
            # Work counters regress upward, except skipped edges, where a
            # drop means the certificates stopped saving work.
            if bare == "engine.edges_skipped":
                regressed = pct is not None and pct < -th.counter_pct
            else:
                regressed = pct is not None and pct > th.counter_pct
            deltas.append(Delta(
                name=name, kind="counter", base=b, new=n, pct=pct,
                regressed=regressed,
            ))

    deltas.sort(key=lambda d: (not d.regressed, -(abs(d.pct or 0.0))))
    return deltas


def _quality_delta(
    name: str, bare: str, base: float, new: float, th: Thresholds
) -> Delta:
    lower_better = bare in obs_quality.LOWER_IS_BETTER
    # Orient so positive `worse` always means movement in the bad direction.
    worse = (new - base) if lower_better else (base - new)
    if bare in obs_quality.FRACTIONS:
        regressed = worse > th.quality_drop
    else:
        base_mag = abs(base)
        regressed = (
            100.0 * worse / base_mag > th.counter_pct
            if base_mag else worse > 0
        )
    return Delta(
        name=name, kind="quality", base=base, new=new,
        pct=_pct(base, new), regressed=regressed,
        note="lower is better" if lower_better else "higher is better",
    )


def regressions(deltas: List[Delta]) -> List[Delta]:
    return [d for d in deltas if d.regressed]
