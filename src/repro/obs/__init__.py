"""Unified telemetry: spans, metrics, and JSONL run journals.

The three primitives compose into one substrate every layer reports
through:

* :mod:`~repro.obs.spans` — nested wall-time timers (2Phase phases, hub
  queries, CG builds);
* :mod:`~repro.obs.metrics` — process-wide labeled counters/gauges/
  histograms (``engine.edges_scanned{phase="twophase.core"}``);
* :mod:`~repro.obs.journal` — an append-only JSONL event stream per run,
  opened with a manifest (config, graph shape, seed, git SHA, versions);
* :mod:`~repro.obs.export` — journal -> ``results/*.json`` + CSV rollups.

On top of the substrate sit the analytics layers:

* :mod:`~repro.obs.quality` — paper-grounded quality counters (CG edge
  fraction, phase-1 precision, Theorem 1 certificates, redundant
  relaxations);
* :mod:`~repro.obs.compare` — cross-run summaries, committed baselines,
  and threshold-gated regression detection;
* :mod:`~repro.obs.report` — terminal + self-contained HTML run reports
  (the ``repro-coregraph obs`` command family drives all three).

Telemetry is disabled by default and every instrumentation point guards on
:func:`is_enabled`, so the off path costs one flag check. Turn it on for a
region with :func:`telemetry`::

    from repro import obs

    with obs.telemetry(trace_path="run.jsonl", config=cfg, seed=7):
        result = two_phase(g, cg, spec, source)
    print(obs.spans.render_summary())
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Optional, Union

from repro.obs import (
    compare, export, journal, metrics, quality, report, runtime, spans, trace,
)
from repro.obs.journal import Journal, build_manifest, emit, read_events
from repro.obs.metrics import REGISTRY, counter, gauge, histogram
from repro.obs.runtime import disable, enable, is_enabled
from repro.obs.spans import span
from repro.obs.trace import TraceContext

__all__ = [
    "compare", "export", "journal", "metrics", "quality", "report",
    "runtime", "spans", "trace",
    "Journal", "build_manifest", "emit", "read_events",
    "REGISTRY", "counter", "gauge", "histogram", "TraceContext",
    "disable", "enable", "is_enabled", "span", "telemetry", "reset",
]


def reset() -> None:
    """Clear accumulated spans and metrics (journals are per-run files)."""
    spans.reset()
    REGISTRY.reset()
    trace.uninstall_collector()


@contextmanager
def telemetry(
    trace_path: Optional[Union[str, Path]] = None,
    config: Any = None,
    graph: Any = None,
    seed: Optional[int] = None,
    fresh: bool = True,
    **manifest_extra: Any,
) -> Iterator[Optional[Journal]]:
    """Enable telemetry for a region, optionally journaling to a file.

    With ``trace_path`` the journal opens with a full manifest line and, on
    exit, receives a final ``metrics`` snapshot event before closing. With
    ``fresh`` (the default) previously accumulated spans/metrics are
    cleared so the region's summary stands alone. The prior enabled state
    is restored on exit, so regions nest safely.
    """
    if fresh:
        reset()
    active: Optional[Journal] = None
    if trace_path is not None:
        manifest = build_manifest(
            config=config,
            graph=graph,
            seed=seed,
            journal_path=str(trace_path),
            **manifest_extra,
        )
        active = Journal(trace_path, manifest)
        journal.activate(active)
    with runtime.enabled():
        try:
            yield active
        finally:
            if active is not None:
                active.emit({"type": "metrics", "metrics": REGISTRY.snapshot()})
                journal.deactivate()
                active.close()
