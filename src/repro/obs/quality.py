"""Paper-grounded run-quality counters.

The paper's headline claims are quantitative: the core graph holds about
10.7% of the edges (Table 4), the core phase leaves most vertices already
precise (Table 5), and the Theorem 1 certificates delete provably wasted
completion-phase work (Table 12). This module names those quantities once
and records them into the shared metrics registry / journal whenever
telemetry is enabled, so every traced run carries the numbers a regression
check (:mod:`repro.obs.compare`) can gate on:

* ``quality.cg_edge_fraction{algorithm=,query=}`` — |E_C| / |E| per build;
* ``quality.phase1_precise_fraction{query=}`` — share of vertices whose
  core-phase value already equals the full-graph result (the final 2Phase
  values *are* the ground truth, so this costs one compare, not a rerun);
* ``quality.certified_fraction{query=}`` — vertices holding a Theorem 1 /
  saturation certificate;
* ``quality.edges_skipped{query=}`` — completion-phase edges the
  certificates removed;
* ``quality.redundant_relaxations{query=}`` — relaxations whose written
  value was superseded (lost-CAS stand-in), both phases combined.

Callers guard on :func:`repro.obs.runtime.is_enabled`; nothing here is on
the disabled hot path.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.obs import metrics as obs_metrics

#: Every quality metric lives under this prefix in the shared registry.
PREFIX = "quality."

#: Bare quality-metric names where a *larger* value signals a regression
#: (a bigger core graph, more wasted work). Everything else under the
#: prefix is higher-is-better (precision, certificates, skipped work).
LOWER_IS_BETTER = frozenset({
    "quality.cg_edge_fraction",
    "quality.cg_core_edges",
    "quality.cg_connectivity_edges",
    "quality.redundant_relaxations",
})

#: Bare names holding fractions in [0, 1]; regression thresholds for these
#: are absolute drops rather than percentages.
FRACTIONS = frozenset({
    "quality.cg_edge_fraction",
    "quality.phase1_precise_fraction",
    "quality.certified_fraction",
})


def record_cg_build(
    *,
    algorithm: str,
    query: str,
    core_edges: int,
    source_edges: int,
    connectivity_edges: int = 0,
) -> float:
    """Record one core-graph identification; returns |E_C| / |E|."""
    fraction = core_edges / source_edges if source_edges else 0.0
    labels = {"algorithm": algorithm, "query": query}
    obs_metrics.gauge("quality.cg_edge_fraction", **labels).set(fraction)
    obs_metrics.gauge("quality.cg_core_edges", **labels).set(core_edges)
    obs_metrics.gauge(
        "quality.cg_connectivity_edges", **labels
    ).set(connectivity_edges)
    return fraction


def phase1_precise_fraction(
    spec: Any, phase1_vals: np.ndarray, final_vals: np.ndarray
) -> float:
    """Share of vertices the core phase already solved exactly.

    ``final_vals`` is the completion phase's output, which the 2Phase
    guarantee makes the full-graph ground truth.
    """
    n = int(final_vals.shape[0])
    if n == 0:
        return 1.0
    precise = spec.values_equal(phase1_vals, final_vals)
    return float(np.count_nonzero(precise)) / n


def record_two_phase(
    *,
    query: str,
    num_vertices: int,
    precise_fraction: Optional[float] = None,
    certified: int = 0,
    edges_skipped: int = 0,
    redundant_relaxations: int = 0,
) -> None:
    """Record the quality outcome of one 2Phase evaluation."""
    if precise_fraction is not None:
        obs_metrics.gauge(
            "quality.phase1_precise_fraction", query=query
        ).set(precise_fraction)
    obs_metrics.gauge("quality.certified_fraction", query=query).set(
        certified / num_vertices if num_vertices else 0.0
    )
    obs_metrics.gauge("quality.edges_skipped", query=query).set(edges_skipped)
    obs_metrics.gauge(
        "quality.redundant_relaxations", query=query
    ).set(redundant_relaxations)


def snapshot(registry: Optional[obs_metrics.MetricsRegistry] = None) -> Dict[str, Any]:
    """All ``quality.*`` metrics currently in the registry."""
    reg = registry if registry is not None else obs_metrics.REGISTRY
    return {
        key: value
        for key, value in reg.snapshot().items()
        if key.startswith(PREFIX)
    }


def bare_name(rendered: str) -> str:
    """``quality.cg_edge_fraction{query="SSSP"}`` -> the un-labeled name."""
    return rendered.split("{", 1)[0]


def _fmt(rendered: str, value: Any) -> str:
    if value is None:
        return "-"
    if bare_name(rendered) in FRACTIONS:
        return f"{100.0 * float(value):.1f}%"
    return f"{int(value):,}" if float(value) == int(value) else f"{value:.4g}"


def summary_line(registry: Optional[obs_metrics.MetricsRegistry] = None) -> str:
    """One-line digest of the quality counters, for the CLI summary.

    Returns an empty string when no quality metric was recorded, so
    untraced commands print nothing extra.
    """
    snap = snapshot(registry)
    if not snap:
        return ""
    short = {
        "quality.cg_edge_fraction": "cg_edges",
        "quality.phase1_precise_fraction": "phase1_precise",
        "quality.certified_fraction": "certified",
        "quality.edges_skipped": "skipped_edges",
        "quality.redundant_relaxations": "redundant_relax",
    }
    parts = []
    for key in sorted(snap):
        name = bare_name(key)
        if name not in short:
            continue
        parts.append(f"{short[name]}={_fmt(key, snap[key])}")
    return "quality: " + " ".join(parts) if parts else ""
