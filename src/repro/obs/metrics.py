"""Process-wide registry of labeled counters, gauges, and histograms.

Metric identity is ``name`` plus a frozen label set, rendered Prometheus
style: ``engine.edges_scanned{phase="core"}``. Counters accumulate, gauges
hold the last value, histograms keep count/sum/min/max. Instrumented code
fetches the metric object once per run and updates it per iteration, so
the registry lookup is off the hot path.

The registry is always functional — whether anything feeds it is decided
by the :mod:`repro.obs.runtime` guard at the instrumentation points.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.live.hist import StreamingHistogram

LabelSet = Tuple[Tuple[str, str], ...]

MetricObject = Union["Counter", "Gauge", "Histogram", StreamingHistogram]


def _label_key(labels: Dict[str, object]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items() if v is not None))


def format_metric(name: str, labels: LabelSet) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically accumulating value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-set value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming count/sum/min/max of observed values."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Thread-safe name+labels -> metric map."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelSet], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelSet], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelSet], Histogram] = {}
        self._stream_hists: Dict[Tuple[str, LabelSet], StreamingHistogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            try:
                return self._counters[key]
            except KeyError:
                metric = self._counters[key] = Counter()
                return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            try:
                return self._gauges[key]
            except KeyError:
                metric = self._gauges[key] = Gauge()
                return metric

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            try:
                return self._histograms[key]
            except KeyError:
                metric = self._histograms[key] = Histogram()
                return metric

    def stream_hist(self, name: str, **labels: object) -> StreamingHistogram:
        """A mergeable log-bucketed histogram with instant percentiles.

        Use for latency-style distributions that need p50/p95/p99 at any
        moment (service latency, queue wait, per-span durations); the
        plain :meth:`histogram` stays for cheap count/sum/min/max
        accumulation.
        """
        key = (name, _label_key(labels))
        with self._lock:
            try:
                return self._stream_hists[key]
            except KeyError:
                metric = self._stream_hists[key] = StreamingHistogram()
                return metric

    def aggregate(self, name: str) -> int:
        """Sum of a counter across all of its label sets."""
        with self._lock:
            return sum(
                c.value for (n, _), c in self._counters.items() if n == name
            )

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view of every metric, keyed by rendered name."""
        out: Dict[str, object] = {}
        with self._lock:
            for (name, labels), c in self._counters.items():
                out[format_metric(name, labels)] = c.value
            for (name, labels), g in self._gauges.items():
                out[format_metric(name, labels)] = g.value
            for (name, labels), h in self._histograms.items():
                out[format_metric(name, labels)] = {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                    "mean": h.mean,
                }
            stream_hists = list(self._stream_hists.items())
        # Streaming histograms snapshot under their own lock (their
        # to_dict walks buckets), so render them outside the registry's.
        for (name, labels), sh in stream_hists:
            out[format_metric(name, labels)] = sh.to_dict()
        return out

    def collect(self) -> List[Tuple[str, str, LabelSet, MetricObject]]:
        """Every live metric as ``(kind, name, labels, metric)`` rows.

        ``kind`` is one of ``counter``/``gauge``/``histogram``/
        ``stream_hist``. The exporter renders from this, so it sees the
        metric objects themselves rather than a JSON projection.
        """
        with self._lock:
            rows: List[Tuple[str, str, LabelSet, MetricObject]] = []
            for (name, labels), c in self._counters.items():
                rows.append(("counter", name, labels, c))
            for (name, labels), g in self._gauges.items():
                rows.append(("gauge", name, labels, g))
            for (name, labels), h in self._histograms.items():
                rows.append(("histogram", name, labels, h))
            for (name, labels), sh in self._stream_hists.items():
                rows.append(("stream_hist", name, labels, sh))
        return rows

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._stream_hists.clear()

    def render_table(self) -> str:
        """Aligned text table of the snapshot, sorted by metric name."""
        snap = self.snapshot()
        if not snap:
            return "no metrics recorded"
        width = max(len(k) for k in snap)
        lines = []
        for key in sorted(snap):
            value = snap[key]
            if isinstance(value, dict):
                value = (f"count={value['count']} sum={value['sum']:.6g} "
                         f"mean={value['mean']:.6g}")
            lines.append(f"{key:{width}s}  {value}")
        return "\n".join(lines)


#: The process-wide registry every instrumentation point shares.
REGISTRY = MetricsRegistry()


def counter(name: str, **labels: object) -> Counter:
    return REGISTRY.counter(name, **labels)


def gauge(name: str, **labels: object) -> Gauge:
    return REGISTRY.gauge(name, **labels)


def histogram(name: str, **labels: object) -> Histogram:
    return REGISTRY.histogram(name, **labels)


def stream_hist(name: str, **labels: object) -> StreamingHistogram:
    return REGISTRY.stream_hist(name, **labels)


def names(snapshot_keys: Iterable[str]) -> set:
    """Bare metric names (labels stripped) of rendered snapshot keys."""
    return {k.split("{", 1)[0] for k in snapshot_keys}
