"""The registered telemetry vocabulary: metric, span, and event names.

Every name written into the shared metrics registry or a run journal is
declared here, once. The catalog serves three consumers:

* the static-analysis rule RC005 (:mod:`repro.checks.lint.rules`), which
  rejects any string-literal metric/span/event name not registered below —
  so a typo'd counter can never silently fork a time series;
* the runtime sanitizer's post-run audit
  (:func:`repro.checks.sanitize.probes.audit_metric_names`), which catches
  names constructed dynamically and therefore invisible to the linter;
* the regression tooling (:mod:`repro.obs.compare`), whose baselines key on
  these names and would misalign silently if a producer drifted.

Adding an instrumentation point means adding its name here (and to the
rule catalog table in ``docs/static-analysis.md``). That friction is the
point: the name space is an interface, reviewed like one.
"""

from __future__ import annotations

from typing import FrozenSet

#: Top-level prefixes a metric name may use. A name must both carry one of
#: these prefixes and be listed in :data:`METRIC_NAMES` — the prefix check
#: alone would let ``engine.itertions`` through.
NAMESPACES: FrozenSet[str] = frozenset({
    "engine",
    "twophase",
    "cg",
    "quality",
    "resilience",
    "graph",
    "checks",
    "serve",
    "obs",
    "proc",
    "evolve",
})

#: Every counter/gauge/histogram name the codebase may record.
METRIC_NAMES: FrozenSet[str] = frozenset({
    # Frontier (and system-model) push rounds.
    "engine.iterations",
    "engine.edges_scanned",
    "engine.updates",
    "engine.vertices_activated",
    "engine.edges_skipped",
    "engine.redundant_relaxations",
    # Scalar worklist engine.
    "engine.scalar.pops",
    "engine.scalar.edges_scanned",
    "engine.scalar.updates",
    "engine.scalar.redundant_relaxations",
    # Delta-stepping.
    "engine.delta_stepping.relaxations",
    "engine.delta_stepping.redundant_relaxations",
    # 2Phase (Algorithm 3) outcomes.
    "twophase.impacted",
    "twophase.certified_precise",
    "twophase.degraded",
    # Paper-grounded quality counters (see repro.obs.quality).
    "quality.cg_edge_fraction",
    "quality.cg_core_edges",
    "quality.cg_connectivity_edges",
    "quality.phase1_precise_fraction",
    "quality.certified_fraction",
    "quality.edges_skipped",
    "quality.redundant_relaxations",
    # Resilience layer.
    "resilience.budget.exceeded",
    "resilience.checkpoint.saves",
    "resilience.faults.injected",
    "resilience.retry.attempts",
    "resilience.retry.retries",
    "resilience.retry.failures",
    "resilience.retry.deadline_skips",
    # Static-analysis / sanitizer layer.
    "checks.sanitize.violations",
    # Query service (repro.serve): admission, shedding, breaker, workers.
    "serve.admitted",
    "serve.rejected",
    "serve.completed",
    "serve.degraded",
    "serve.shed",
    "serve.requeued",
    "serve.poisoned",
    "serve.breaker.trips",
    "serve.breaker.state",
    "serve.worker.restarts",
    "serve.queue.depth",
    "serve.latency_ms",
    # Live observability plane (repro.obs.live): streaming histograms,
    # exporter, profiler, SLO burn rates.
    "obs.live.span_ms",
    "obs.live.exporter.scrapes",
    "obs.live.exporter.errors",
    "obs.live.profiler.samples",
    "obs.live.profiler.dropped",
    "serve.queue_wait_ms",
    "serve.slo.burn_rate",
    "serve.slo.firing",
    "serve.slo.alerts",
    # Service-level series the exporter derives from the always-on tally
    # (never written to the registry, but part of the scraped vocabulary).
    "serve.submitted",
    "serve.failed",
    "serve.workers_alive",
    "serve.lost",
    "serve.queue_depth",
    # Request-scoped tracing: tail-sampler retention accounting
    # (repro.obs.trace.TraceStore, exported by the query service).
    "obs.trace.retained",
    "obs.trace.dropped",
    "obs.trace.evicted",
    "obs.trace.abandoned",
    "obs.trace.truncated",
    "obs.trace.store.traces",
    "obs.trace.store.events",
    # Live-graph epoch maintenance (repro.evolve): mutation batches,
    # epoch swaps, background rebuilds, and staleness accounting.
    "evolve.epoch",
    "evolve.batches",
    "evolve.inserted_edges",
    "evolve.deleted_edges",
    "evolve.swaps",
    "evolve.rebuilds",
    "evolve.rebuild.failures",
    "evolve.rebuild.retries",
    "evolve.stale_answers",
    "evolve.epoch_lag",
    "evolve.probe_precision",
    "evolve.pinned",
    # Durability plane (repro.evolve.wal / snapshot / recovery): append
    # latency, fsync amortization, segment churn, and replay accounting.
    "evolve.wal.appends",
    "evolve.wal.append_ms",
    "evolve.wal.fsyncs",
    "evolve.wal.segments",
    "evolve.wal.compacted_segments",
    "evolve.wal.aborts",
    "evolve.snapshot.saves",
    "evolve.snapshot.failures",
    "evolve.recovery.replayed",
    "evolve.recovery.skipped",
    "evolve.recovery.truncated_bytes",
    # Process runtime gauges sampled at scrape time (repro.obs.live.proc).
    "proc.rss_bytes",
    "proc.cpu_seconds",
    "proc.threads",
    "proc.gc.collections",
    "proc.gc.collected",
    "proc.gc.uncollectable",
    "proc.gc.pause_ms",
})

#: Every span name (see repro.obs.spans) a ``with span(...)`` may open.
SPAN_NAMES: FrozenSet[str] = frozenset({
    "twophase.core",
    "twophase.completion",
    "cg.build",
    "cg.hub_query",
    "cg.hub_traverse",
    "cg.connectivity",
    # Request lifecycle: the synthetic root span (submit -> resolve),
    # admission decision, queue wait, and worker execution.
    "serve.request",
    "serve.admit",
    "serve.queue.wait",
    "serve.execute",
    # Epoch maintenance: one batch application, one background rebuild.
    "evolve.apply",
    "evolve.rebuild",
})

#: Every ``name`` a ``{"type": "event", ...}`` journal line may carry.
EVENT_NAMES: FrozenSet[str] = frozenset({
    "graph.loaded",
    "cg.built",
    "twophase.result",
    "scalar.run",
    "delta_stepping.run",
    "checkpoint.saved",
    "budget.exceeded",
    "fault.injected",
    "sanitizer.violation",
    "serve.request",
    "serve.breaker",
    "serve.worker.restart",
    "serve.stats",
    "serve.slo.alert",
    "serve.explain",
    "obs.profile",
    "evolve.batch",
    "evolve.swap",
    "evolve.rebuild",
    "evolve.stats",
    "evolve.snapshot",
    "evolve.recovery",
    "evolve.wal.stats",
})


def known_metric(name: str) -> bool:
    """Whether ``name`` (labels stripped) is a registered metric name."""
    return name.split("{", 1)[0] in METRIC_NAMES


def known_span(name: str) -> bool:
    return name in SPAN_NAMES


def known_event(name: str) -> bool:
    return name in EVENT_NAMES


def unknown_metric_names(rendered_keys) -> "set[str]":
    """The unregistered bare names among rendered registry snapshot keys."""
    return {
        key.split("{", 1)[0]
        for key in rendered_keys
        if not known_metric(key)
    }
