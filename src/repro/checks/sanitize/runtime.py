"""Sanitizer switch and violation reporting.

Mirrors :mod:`repro.obs.runtime`: probes throughout the engines guard on
the module attribute ``_enabled``, so the disabled path costs one
attribute read per check site. Enabled via ``REPRO_SANITIZE=1`` in the
environment (read once at import), :func:`enable`, or the
:func:`enabled` context manager.

A failed probe calls :func:`report`, which increments the
``checks.sanitize.violations`` counter, journals a
``sanitizer.violation`` event (both only while telemetry is on), and
raises :class:`SanitizerViolation` — loud by design: a violated paper
invariant means the run's output cannot be trusted, so there is no
collect-and-continue mode.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_enabled: bool = os.environ.get("REPRO_SANITIZE", "") == "1"


class SanitizerViolation(AssertionError):
    """A runtime invariant probe failed.

    Attributes
    ----------
    probe:
        Which probe fired (``"monotone_watchdog"``, ``"csr"``, ...).
    site:
        Where it was checking (``"engine.frontier"``, ``"twophase"``, ...).
    detail:
        Probe-specific evidence (counts, example vertices/values).
    """

    def __init__(self, probe: str, site: str, message: str, **detail):
        super().__init__(f"[{probe} @ {site}] {message}")
        self.probe = probe
        self.site = site
        self.detail = detail


def is_enabled() -> bool:
    """Whether the runtime sanitizer is active."""
    return _enabled


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


@contextmanager
def enabled(state: bool = True) -> Iterator[None]:
    """Temporarily force the sanitizer on (or off), restoring on exit."""
    global _enabled
    prior = _enabled
    _enabled = state
    try:
        yield
    finally:
        _enabled = prior


def report(probe: str, site: str, message: str, **detail) -> None:
    """Record and raise a sanitizer violation."""
    from repro.obs import journal as obs_journal
    from repro.obs import metrics as obs_metrics
    from repro.obs import runtime as obs_runtime

    if obs_runtime._enabled:
        obs_metrics.counter(
            "checks.sanitize.violations", probe=probe, site=site
        ).inc()
        obs_journal.emit({
            "type": "event", "name": "sanitizer.violation",
            "probe": probe, "site": site, "message": message,
        })
    raise SanitizerViolation(probe, site, message, **detail)
