"""Runtime invariant probes.

Each probe validates one paper (or repo) invariant against live engine
state and calls :func:`repro.checks.sanitize.runtime.report` on failure.
Callers guard every call on ``runtime._enabled`` — the probes themselves
assume they should run.

The probes are deliberately self-contained recomputations: the
monotonicity watchdog re-derives the selection direction from the spec,
the certificate audit re-checks sampled fixed-point conditions through
the *reverse* graph, and the async lost-update check replays a round
synchronously from its entry snapshot. Sharing the engine's own
arithmetic would let a bug hide in both places at once.

Everything here is deterministic (stride sampling, no RNG, no clock), so
a sanitized run still replays bit-identically under checkpoint/resume.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.checks.sanitize.runtime import report
from repro.graph.csr import Graph
from repro.queries.base import QuerySpec, Selection

#: Cap on vertices re-checked by the certificate fixed-point audit.
CERTIFICATE_SAMPLES = 256


# ---------------------------------------------------------------------------
# Structural probes
# ---------------------------------------------------------------------------


def check_csr(g: Graph, site: str) -> None:
    """CSR well-formedness: offsets monotone and consistent, dst in range."""
    n = g.num_vertices
    offsets, dst = g.offsets, g.dst
    if offsets.size != n + 1:
        report("csr", site, f"offsets has {offsets.size} entries for "
               f"{n} vertices (want n+1)")
    if int(offsets[0]) != 0:
        report("csr", site, f"offsets[0] = {int(offsets[0])}, want 0")
    if int(offsets[-1]) != dst.size:
        report("csr", site, f"offsets[-1] = {int(offsets[-1])} but there "
               f"are {dst.size} edges")
    if offsets.size > 1 and bool(np.any(np.diff(offsets) < 0)):
        i = int(np.flatnonzero(np.diff(offsets) < 0)[0])
        report("csr", site, f"offsets decrease at vertex {i}")
    if dst.size and (int(dst.min()) < 0 or int(dst.max()) >= n):
        bad = dst[(dst < 0) | (dst >= n)][0]
        report("csr", site, f"edge destination {int(bad)} outside [0, {n})")
    if g.weights is not None:
        if g.weights.size != dst.size:
            report("csr", site, f"{g.weights.size} weights for "
                   f"{dst.size} edges")
        if not bool(np.all(np.isfinite(g.weights))):
            report("csr", site, "non-finite edge weight")


def check_frontier(frontier: np.ndarray, num_vertices: int, site: str) -> None:
    """Frontier hygiene: integer, in range, duplicate-free."""
    if frontier.size == 0:
        return
    if not np.issubdtype(frontier.dtype, np.integer):
        report("frontier", site, f"frontier dtype {frontier.dtype} is not "
               "integral")
    lo, hi = int(frontier.min()), int(frontier.max())
    if lo < 0 or hi >= num_vertices:
        report("frontier", site, f"frontier vertex out of range "
               f"(min={lo}, max={hi}, n={num_vertices})")
    uniq = np.unique(frontier).size
    if uniq != frontier.size:
        report("frontier", site, f"frontier holds {frontier.size - uniq} "
               "duplicate vertices (double-counted edge scans)")


def check_symmetrized(g: Graph, sym: Graph, site: str) -> None:
    """A symmetrized view must double the edges over the same vertex set."""
    if sym.num_vertices != g.num_vertices:
        report("symmetrize", site, f"symmetrized view has "
               f"{sym.num_vertices} vertices, source has {g.num_vertices}")
    if sym.num_edges != 2 * g.num_edges:
        report("symmetrize", site, f"symmetrized view has {sym.num_edges} "
               f"edges, want 2x{g.num_edges}")
    check_csr(sym, site)


# ---------------------------------------------------------------------------
# Value-propagation probes
# ---------------------------------------------------------------------------


def monotone_watchdog(
    spec: QuerySpec, old: np.ndarray, new: np.ndarray, site: str
) -> None:
    """Accepted updates must move in the selection direction (§2.1).

    For a MIN-selection query no vertex value may increase; for MAX none
    may decrease. A violation means the reduce step (or the spec's
    comparator) is broken — every downstream guarantee (Algorithm 3's
    convergence, Theorem 1's bounds) assumes this monotone lattice walk.

    The direction is re-derived from the :class:`Selection` enum rather
    than through ``spec.better``, so a broken comparator cannot vouch for
    its own writes.
    """
    old = np.asarray(old).ravel()
    new = np.asarray(new).ravel()
    if spec.selection is Selection.MIN:
        wrong = new > old
    else:
        wrong = new < old
    wrong &= ~spec.values_equal(old, new)
    if bool(np.any(wrong)):
        i = int(np.flatnonzero(wrong)[0])
        report(
            "monotone_watchdog", site,
            f"{int(np.count_nonzero(wrong))} value(s) moved against the "
            f"{spec.selection.name} selection direction "
            f"(e.g. {float(old[i])!r} -> {float(new[i])!r})",
            count=int(np.count_nonzero(wrong)),
        )


def check_cg_containment(g: Graph, cg, site: str) -> None:
    """Every core-graph edge must exist in the source graph (Algorithm 1).

    The CG is a pure edge *subset*: same vertex set, each (u, v, w) taken
    verbatim from G. An invented or reweighted edge would let the core
    phase compute values no real path achieves, silently voiding the
    paper's precision claims (§3.1).
    """
    cgg: Graph = cg.graph
    if cgg.num_vertices != g.num_vertices:
        report("cg_containment", site, f"CG has {cgg.num_vertices} "
               f"vertices, source graph has {g.num_vertices}")
    if cgg.num_edges > g.num_edges:
        report("cg_containment", site, f"CG has more edges "
               f"({cgg.num_edges}) than the source graph ({g.num_edges})")
    mask = getattr(cg, "edge_mask", None)
    if mask is not None and int(np.count_nonzero(mask)) != cgg.num_edges:
        report("cg_containment", site, f"edge_mask marks "
               f"{int(np.count_nonzero(mask))} edges but the CG holds "
               f"{cgg.num_edges}")
    if cgg.num_edges == 0:
        return
    g_rows = _edge_rows(g)
    cg_rows = _edge_rows(cgg)
    missing = ~np.isin(cg_rows, g_rows)
    if bool(np.any(missing)):
        report(
            "cg_containment", site,
            f"{int(np.count_nonzero(missing))} CG edge(s) absent from the "
            "source graph (wrong endpoint or weight)",
            count=int(np.count_nonzero(missing)),
        )


def _edge_rows(g: Graph) -> np.ndarray:
    """One structured scalar per edge: (src, dst, weight) — isin-able."""
    src = np.repeat(
        np.arange(g.num_vertices, dtype=np.int64), np.diff(g.offsets)
    )
    w = g.weights if g.weights is not None else np.zeros(g.num_edges)
    rows = np.empty(
        g.num_edges, dtype=[("u", "i8"), ("v", "i8"), ("w", "f8")]
    )
    rows["u"], rows["v"], rows["w"] = src, g.dst, w
    return rows


def audit_certified_fixed_point(
    g: Graph,
    spec: QuerySpec,
    vals: np.ndarray,
    certified: Optional[np.ndarray],
    site: str,
    max_samples: int = CERTIFICATE_SAMPLES,
) -> None:
    """Cross-audit Theorem 1 / saturation certificates on sampled vertices.

    A certified vertex had its in-edges removed from the completion phase
    (Reduced(E)), so nothing downstream would ever notice a wrong
    certificate — this probe is the only check. A certificate is sound
    iff the vertex already sits at its fixed point: no in-edge (u, w) may
    offer ``propagate(vals[u], w)`` strictly better than ``vals[v]``.

    Sampling is a deterministic stride over the certified set (capped at
    ``max_samples``), keeping the probe O(sample * max_in_degree) and
    replay-stable.
    """
    if certified is None:
        return
    idx = np.flatnonzero(certified)
    if idx.size == 0:
        return
    if idx.size > max_samples:
        stride = idx.size // max_samples
        idx = idx[::stride][:max_samples]
    rev = g.reverse()
    from repro.graph.transform import reverse_edge_permutation

    weights = spec.weight_transform(g.edge_weights())
    weights_rev = weights[reverse_edge_permutation(g)]
    for v in idx:
        lo, hi = int(rev.offsets[v]), int(rev.offsets[v + 1])
        if lo == hi:
            continue
        u = rev.dst[lo:hi]
        cand = spec.propagate(vals[u], weights_rev[lo:hi])
        beats = spec.better(cand, vals[v]) & ~spec.values_equal(cand, vals[v])
        if bool(np.any(beats)):
            j = int(np.flatnonzero(beats)[0])
            report(
                "certificate_audit", site,
                f"vertex {int(v)} certified precise at "
                f"{float(vals[v])!r} but in-neighbor {int(u[j])} offers "
                f"{float(cand[j])!r}",
                vertex=int(v),
            )


def check_async_no_lost_updates(
    work: Graph,
    spec: QuerySpec,
    weights: np.ndarray,
    frontier: np.ndarray,
    start_vals: np.ndarray,
    end_vals: np.ndarray,
    site: str,
) -> None:
    """The async schedule must dominate one synchronous round.

    Immediate visibility may only *add* progress: replaying the round
    synchronously from its entry snapshot gives the least progress any
    correct schedule achieves, so an async round ending with a worse
    value at some vertex has lost an update (the classic read-reduce
    race). The shadow replay uses ``reduce_at`` on a copy, touching none
    of the engine's state.
    """
    expected = start_vals.copy()
    from repro.engines.frontier import ragged_gather

    edge_idx, u = ragged_gather(work.offsets, frontier)
    if edge_idx.size:
        v = work.dst[edge_idx]
        cand = spec.propagate(start_vals[u], weights[edge_idx])
        spec.reduce_at(expected, v, cand)
    lost = spec.better(expected, end_vals) & ~spec.values_equal(
        expected, end_vals
    )
    if bool(np.any(lost)):
        i = int(np.flatnonzero(lost)[0])
        report(
            "async_lost_update", site,
            f"{int(np.count_nonzero(lost))} vertex(es) ended the round "
            f"worse than the synchronous replay (e.g. vertex {i}: "
            f"{float(end_vals[i])!r} vs expected {float(expected[i])!r})",
            count=int(np.count_nonzero(lost)),
        )


def check_epoch_integrity(epoch, site: str) -> None:
    """A pinned epoch must be internally consistent — never torn.

    Torn means the graph and the core-graph proxy come from different
    versions: the fingerprint no longer matches the graph content, the
    proxy's edge mask addresses a different edge array, or the proxy
    contains edges the graph lost. Any of these would silently void the
    2Phase exactness argument for answers computed on the pin.
    """
    g: Graph = epoch.graph
    actual = g.fingerprint()
    if actual != epoch.fingerprint:
        report("epoch_integrity", site,
               f"epoch {epoch.number} fingerprint {epoch.fingerprint[:12]} "
               f"does not match its graph content ({actual[:12]})")
    proxy = epoch.proxy
    mask = getattr(proxy, "edge_mask", None)
    if mask is not None and mask.size != g.num_edges:
        report("epoch_integrity", site,
               f"epoch {epoch.number} proxy mask covers {mask.size} edges "
               f"but the graph holds {g.num_edges} — graph and CG are from "
               "different versions")
    check_cg_containment(g, proxy, site)


# ---------------------------------------------------------------------------
# Telemetry-name audit
# ---------------------------------------------------------------------------


def audit_metric_names(site: str) -> None:
    """Every live registry name must be in the registered catalog.

    RC005 catches string literals; this catches names built at runtime
    (f-strings, concatenation) that the linter cannot see.
    """
    from repro.obs.metrics import REGISTRY
    from repro.obs.namespaces import unknown_metric_names

    unknown = unknown_metric_names(REGISTRY.snapshot().keys())
    if unknown:
        report(
            "metric_names", site,
            "unregistered metric name(s) in the live registry: "
            + ", ".join(sorted(unknown)),
            names=sorted(unknown),
        )
