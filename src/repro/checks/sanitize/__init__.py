"""Runtime invariant sanitizer (dev mode).

Off by default; enable with ``REPRO_SANITIZE=1`` (read at import), the
CLI's ``--sanitize`` flag, or :func:`enable`. When off, every
instrumented site costs one module-attribute read. When on, probes
validate live engine state against the paper's invariants and raise
:class:`SanitizerViolation` on the first breach.

Probe catalog (see :mod:`repro.checks.sanitize.probes`):

========================  ==================================================
``check_csr``             CSR structure: offsets/dst/weights consistency
``check_frontier``        frontier in range, duplicate-free
``check_symmetrized``     symmetric view doubles edges over the same V
``monotone_watchdog``     accepted updates move in the selection direction
``check_cg_containment``  CG edges are a verbatim subset of G's (Alg. 1)
``audit_certified_fixed_point``  Theorem 1 certificates hold at sampled v
``check_async_no_lost_updates``  async round dominates a sync replay
``audit_metric_names``    live registry names are all registered
========================  ==================================================
"""

from repro.checks.sanitize import probes  # noqa: F401
from repro.checks.sanitize.runtime import (  # noqa: F401
    SanitizerViolation,
    disable,
    enable,
    enabled,
    is_enabled,
    report,
)
