"""Stale-suppression audit (rule RC100, ``check --strict-noqa``).

A ``# repro: noqa`` that suppresses nothing is worse than noise: it
documents a violation that no longer exists, and it will silently eat
the *next* real finding on that line. This audit re-runs every analysis
with suppressions disabled — the per-file RC lint rules and the
whole-program concurrency analyzer — and then checks each suppression
comment against the raw findings:

* **stale** — the comment names a rule (or blanket-suppresses a line)
  that raises no violation there; delete it or narrow it;
* **unjustified** — nothing but whitespace follows the rule ids; every
  suppression must say *why* the finding is acceptable, because the
  reviewer of the next diff can't re-derive the argument from a bare id.

Comments are located with :mod:`tokenize`, not a substring scan, so
prose *about* suppressions inside docstrings (this one included) is
never mistaken for a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.checks.lint.framework import (
    ALL_RULES_SENTINEL,
    PathLike,
    Violation,
    _NOQA_FILE,
    _NOQA_LINE,
    discover_files,
    make_context,
)

RULE = "RC100"
RULE_TITLE = "stale or unjustified suppression"

_WORD = re.compile(r"\w")
#: Minimum word characters after the ids for a justification to count.
_MIN_JUSTIFICATION_CHARS = 3


def _raw_lint(path: Path, root: Optional[PathLike]) -> List[Violation]:
    """Every lint finding for ``path`` with suppressions ignored."""
    from repro.checks.lint.rules import ALL_RULES

    try:
        ctx = make_context(path, root=root)
    except (SyntaxError, UnicodeDecodeError, OSError):
        return []
    out: List[Violation] = []
    for rule in ALL_RULES:
        if rule.applies_to(ctx):
            out.extend(rule.check(ctx))
    return out


def _noqa_comments(source: str) -> Iterator[Tuple[int, str]]:
    """(line, text) for every real comment token mentioning ``repro:``."""
    reader = io.StringIO(source).readline
    try:
        for tok in tokenize.generate_tokens(reader):
            if tok.type == tokenize.COMMENT and "repro:" in tok.string:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


def audit(
    paths: Iterable[PathLike], root: Optional[PathLike] = None
) -> List[Violation]:
    """RC100 findings for every suppression under ``paths``."""
    from repro.checks.race import analyze

    files = discover_files(paths)
    race_by_file: Dict[Path, List[Violation]] = {}
    for v in analyze(files, respect_suppressions=False):
        race_by_file.setdefault(Path(v.path), []).append(v)
    out: List[Violation] = []
    for path in files:
        try:
            source = path.read_text()
        except (OSError, UnicodeDecodeError):
            continue
        raw = _raw_lint(path, root) + race_by_file.get(path, [])
        by_line: Dict[int, Set[str]] = {}
        file_ids: Set[str] = set()
        for v in raw:
            by_line.setdefault(v.line, set()).add(v.rule)
            file_ids.add(v.rule)
        for lineno, comment in _noqa_comments(source):
            out.extend(
                _audit_comment(path, lineno, comment, by_line, file_ids)
            )
    out.sort(key=lambda v: (str(v.path), v.line, v.message))
    return out


def _audit_comment(
    path: Path,
    lineno: int,
    comment: str,
    by_line: Dict[int, Set[str]],
    file_ids: Set[str],
) -> List[Violation]:
    match = _NOQA_FILE.search(comment)
    file_wide = match is not None
    if match is None:
        match = _NOQA_LINE.search(comment)
    if match is None:
        return []  # mentions "repro:" but is not a suppression
    ids_text = match.group("ids")
    out: List[Violation] = []
    trailing = comment[match.end():]
    if len(_WORD.findall(trailing)) < _MIN_JUSTIFICATION_CHARS:
        out.append(Violation(
            rule=RULE,
            path=path,
            line=lineno,
            message=(
                "suppression lacks a justification — say why after the "
                "ids, e.g. '# repro: noqa RC004 — bounded by config'"
            ),
        ))
    present = file_ids if file_wide else by_line.get(lineno, set())
    if ids_text is None:
        if not present:
            out.append(Violation(
                rule=RULE,
                path=path,
                line=lineno,
                message=(
                    "stale suppression: no rule raises anything on this "
                    "line — delete the '# repro: noqa'"
                ),
            ))
        return out
    ids = sorted(x.strip() for x in ids_text.split(","))
    stale = [i for i in ids if i not in present]
    if stale:
        where = "anywhere in this file" if file_wide else "on this line"
        out.append(Violation(
            rule=RULE,
            path=path,
            line=lineno,
            message=(
                f"stale suppression: {', '.join(stale)} raises nothing "
                f"{where} — delete or narrow the noqa"
            ),
        ))
    return out


__all__ = [
    "RULE",
    "RULE_TITLE",
    "ALL_RULES_SENTINEL",
    "audit",
]
