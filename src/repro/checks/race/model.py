"""Whole-program AST model for the concurrency analyzer.

:class:`ProgramModel` parses every file under the scan roots once and
builds the facts the analysis passes consume:

* a **class index** — per class: lock/condition/event fields (constructor
  assignments and dataclass annotations), constructor-typed fields
  (``self.x = ClassName(...)`` or a ``ClassName``-annotated ``__init__``
  parameter stored on ``self``), thread entry points
  (``threading.Thread(target=self.m)``), and resource-protocol facts
  (``pin`` methods, file handles opened in ``__init__``);
* a **method summary** per ``(class, method)`` — field accesses with the
  lock set held locally at each one, call edges with the held set at the
  call site, lock acquisitions, blocking calls, and resource-pairing
  events (``pin()`` uses, bare ``acquire``/``release``, budget claims).

The walker is flow-sensitive for ``with`` blocks (the held set is exact
per statement) and tracks local aliases (``ev = self._ev``) through the
constructor-derived field types, so chains like
``self._service._queue.pop()`` resolve to real call edges. Module-level
functions are deliberately *not* modeled: they run on whichever thread
called them with whatever locking that caller chose, and attributing
their accesses context-insensitively would drown the report in false
positives (the analysis passes document the resulting blind spot).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

#: A lock identity: (owning class name, lock attribute name).
LockId = Tuple[str, str]
#: A method identity: (class name, method name).
MethodKey = Tuple[str, str]

_LOCK_CTORS = {"threading.Lock", "Lock", "threading.RLock", "RLock"}
_RLOCK_CTORS = {"threading.RLock", "RLock"}
_COND_CTORS = {"threading.Condition", "Condition"}
_SYNC_CTORS = {
    "threading.Event", "Event",
    "threading.Semaphore", "Semaphore",
    "threading.BoundedSemaphore", "BoundedSemaphore",
    "threading.Barrier", "Barrier",
}
_THREAD_CTORS = {"threading.Thread", "Thread"}

#: Method names that mutate their receiver container in place.
_MUTATORS = {
    "append", "extend", "insert", "pop", "popleft", "appendleft",
    "clear", "update", "add", "remove", "discard", "setdefault",
}

#: Calls that can block (or crash, for fault points) — dangerous under a
#: lock. Dotted-name forms; attribute forms are handled in the walker.
_BLOCKING_NAMES = {
    "open", "fault_point", "atomic_open", "atomic_write_text",
    "time.sleep", "os.fsync", "input",
}
_BLOCKING_PREFIXES = ("subprocess.", "np.save", "numpy.save", "shutil.")
_BLOCKING_ATTRS = {"write_text", "write_bytes", "handle_request"}


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


@dataclass(frozen=True)
class Access:
    """One read or write of ``cls.field`` with the locally held locks."""

    cls: str
    field: str
    write: bool
    held: FrozenSet[LockId]
    line: int
    stmt: int
    in_init: bool


@dataclass(frozen=True)
class CallEdge:
    callee: MethodKey
    held: FrozenSet[LockId]
    line: int


@dataclass(frozen=True)
class Acquire:
    lock: LockId
    held: FrozenSet[LockId]
    line: int
    via_with: bool


@dataclass(frozen=True)
class Release:
    lock: LockId
    line: int
    in_finally: bool


@dataclass(frozen=True)
class Blocking:
    what: str
    held: FrozenSet[LockId]
    line: int


@dataclass(frozen=True)
class PinUse:
    owner: str
    line: int
    in_with: bool


@dataclass(frozen=True)
class ClaimEvent:
    """A ``begin_run``/``reset`` call for the budget typestate check."""

    kind: str  # "begin" | "reset"
    recv: str
    depth: int
    bind_depth: int
    line: int


@dataclass
class MethodSummary:
    key: MethodKey
    path: Path
    line: int
    is_init: bool = False
    is_thread_root: bool = False
    accesses: List[Access] = field(default_factory=list)
    calls: List[CallEdge] = field(default_factory=list)
    acquires: List[Acquire] = field(default_factory=list)
    releases: List[Release] = field(default_factory=list)
    blocking: List[Blocking] = field(default_factory=list)
    pins: List[PinUse] = field(default_factory=list)
    claims: List[ClaimEvent] = field(default_factory=list)
    #: Lines calling ``os.replace``/``os.rename`` — paired by RC105 with
    #: an ``os.fsync`` earlier in the method (or in a callee before it).
    renames: List[int] = field(default_factory=list)


@dataclass
class ClassInfo:
    name: str
    path: Path
    line: int
    lock_fields: Set[str] = field(default_factory=set)
    rlock_fields: Set[str] = field(default_factory=set)
    cond_fields: Set[str] = field(default_factory=set)
    sync_fields: Set[str] = field(default_factory=set)
    typed_fields: Dict[str, str] = field(default_factory=dict)
    thread_targets: Set[str] = field(default_factory=set)
    methods: Dict[str, ast.AST] = field(default_factory=dict)
    properties: Set[str] = field(default_factory=set)
    no_self: Set[str] = field(default_factory=set)  # static/classmethods
    owned: bool = False  # constructed as a field of another modeled class
    has_pin: bool = False
    opens_in_init: Dict[str, int] = field(default_factory=dict)
    #: ``self.x = <...>.open(...)`` outside ``__init__`` (WAL segment
    #: rotation, journal reopen): the handle still needs a class close.
    opens_elsewhere: Dict[str, int] = field(default_factory=dict)
    closes: Set[str] = field(default_factory=set)

    def lockish(self, name: str) -> bool:
        return name in self.lock_fields or name in self.cond_fields

    def reentrant(self, name: str) -> bool:
        return name in self.rlock_fields or name in self.cond_fields


class ProgramModel:
    """Class index + per-method summaries for a set of source roots."""

    def __init__(self) -> None:
        self.classes: Dict[str, ClassInfo] = {}
        self.methods: Dict[MethodKey, MethodSummary] = {}
        self.sources: Dict[Path, str] = {}
        self._duplicates: Set[str] = set()

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, files: List[Path]) -> "ProgramModel":
        model = cls()
        parsed: List[Tuple[Path, ast.Module]] = []
        for path in files:
            try:
                source = path.read_text()
                tree = ast.parse(source, filename=str(path))
            except (SyntaxError, UnicodeDecodeError, OSError):
                continue
            model.sources[path] = source
            parsed.append((path, tree))
        # Pass 1: register class names so pass 2 can resolve types.
        for path, tree in parsed:
            for node in tree.body:
                if isinstance(node, ast.ClassDef):
                    if node.name in model.classes:
                        model._duplicates.add(node.name)
                        continue
                    model.classes[node.name] = ClassInfo(
                        name=node.name, path=path, line=node.lineno
                    )
        # Pass 2: fields, thread targets, resource facts.
        for path, tree in parsed:
            for node in tree.body:
                if isinstance(node, ast.ClassDef):
                    ci = model.classes.get(node.name)
                    if ci is not None and ci.path == path:
                        model._scan_class(ci, node)
        # Pass 3: per-method walks (needs the completed class index).
        for path, tree in parsed:
            for node in tree.body:
                if isinstance(node, ast.ClassDef):
                    ci = model.classes.get(node.name)
                    if ci is not None and ci.path == path:
                        model._walk_class(ci, node)
        return model

    def resolve(self, name: Optional[str]) -> Optional[ClassInfo]:
        if name is None or name in self._duplicates:
            return None
        return self.classes.get(name)

    # ------------------------------------------------------------------
    # Pass 2: class facts
    # ------------------------------------------------------------------
    def _scan_class(self, ci: ClassInfo, node: ast.ClassDef) -> None:
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                ci.methods[item.name] = item
                for deco in item.decorator_list:
                    d = _dotted(deco)
                    if d == "property":
                        ci.properties.add(item.name)
                    if d in ("staticmethod", "classmethod"):
                        ci.no_self.add(item.name)
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                self._classify_sync_field(ci, item.target.id,
                                          _dotted(item.annotation))
        ci.has_pin = "pin" in ci.methods
        init = ci.methods.get("__init__")
        if isinstance(init, (ast.FunctionDef, ast.AsyncFunctionDef)):
            param_types = self._init_param_types(init)
            for sub in ast.walk(init):
                if not (isinstance(sub, ast.Assign) and len(sub.targets) == 1):
                    continue
                target = sub.targets[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                self._classify_init_field(ci, target.attr, sub.value,
                                          param_types)
        # Thread targets, close() calls, and handle-opening assignments
        # anywhere in the class body.
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Attribute)
                and isinstance(sub.targets[0].value, ast.Name)
                and sub.targets[0].value.id == "self"
                and isinstance(sub.value, ast.Call)
                and isinstance(sub.value.func, ast.Attribute)
                and sub.value.func.attr == "open"
            ):
                fld = sub.targets[0].attr
                if fld not in ci.opens_in_init:
                    ci.opens_elsewhere.setdefault(fld, sub.value.lineno)
            if not isinstance(sub, ast.Call):
                continue
            func = _dotted(sub.func)
            if func in _THREAD_CTORS:
                for kw in sub.keywords:
                    if kw.arg != "target":
                        continue
                    if (
                        isinstance(kw.value, ast.Attribute)
                        and isinstance(kw.value.value, ast.Name)
                        and kw.value.value.id == "self"
                    ):
                        ci.thread_targets.add(kw.value.attr)
            if (
                isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "close"
                and isinstance(sub.func.value, ast.Attribute)
                and isinstance(sub.func.value.value, ast.Name)
                and sub.func.value.value.id == "self"
            ):
                ci.closes.add(sub.func.value.attr)

    def _classify_sync_field(
        self, ci: ClassInfo, name: str, ctor: Optional[str]
    ) -> None:
        if ctor in _LOCK_CTORS:
            ci.lock_fields.add(name)
            if ctor in _RLOCK_CTORS:
                ci.rlock_fields.add(name)
        elif ctor in _COND_CTORS:
            ci.cond_fields.add(name)
        elif ctor in _SYNC_CTORS:
            ci.sync_fields.add(name)

    def _classify_init_field(
        self,
        ci: ClassInfo,
        name: str,
        value: ast.AST,
        param_types: Dict[str, str],
    ) -> None:
        if isinstance(value, ast.Call):
            ctor = _dotted(value.func)
            if ctor is not None:
                self._classify_sync_field(ci, name, ctor)
                if ctor in _THREAD_CTORS:
                    ci.typed_fields[name] = "@Thread"
                elif ctor in self.classes and ctor not in self._duplicates:
                    ci.typed_fields[name] = ctor
                    self.classes[ctor].owned = True
            if (
                isinstance(value.func, ast.Attribute)
                and value.func.attr == "open"
            ):
                ci.opens_in_init[name] = value.lineno
        elif isinstance(value, ast.Name) and value.id in param_types:
            ci.typed_fields[name] = param_types[value.id]

    def _init_param_types(self, init: ast.AST) -> Dict[str, str]:
        """``__init__`` params whose annotation names a modeled class.

        Unwraps ``Optional[X]``/``"X"`` string annotations. Only the
        constructor's params are trusted: a transfer object passed into a
        regular method is not evidence the callee retains or shares it.
        """
        out: Dict[str, str] = {}
        assert isinstance(init, (ast.FunctionDef, ast.AsyncFunctionDef))
        for arg in init.args.args + init.args.kwonlyargs:
            name = self._annotation_class(arg.annotation)
            if name is not None:
                out[arg.arg] = name
        return out

    def _annotation_class(self, ann: Optional[ast.AST]) -> Optional[str]:
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            candidate = ann.value.strip().strip("'\"")
        elif isinstance(ann, ast.Subscript):
            return self._annotation_class(ann.slice)
        else:
            candidate = _dotted(ann) or ""
        candidate = candidate.split("[", 1)[0].split(".")[-1]
        if candidate in self.classes and candidate not in self._duplicates:
            return candidate
        return None

    # ------------------------------------------------------------------
    # Pass 3: method walks
    # ------------------------------------------------------------------
    def _walk_class(self, ci: ClassInfo, node: ast.ClassDef) -> None:
        for name, func in ci.methods.items():
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            summary = MethodSummary(
                key=(ci.name, name),
                path=ci.path,
                line=func.lineno,
                is_init=(name == "__init__"),
                is_thread_root=(name in ci.thread_targets),
            )
            walker = _MethodWalker(
                self, ci, summary,
                self_type=None if name in ci.no_self else ci.name,
            )
            walker.walk(func)
            self.methods[summary.key] = summary
            # Classes defined inside a method (the HTTP handler pattern)
            # run their methods on foreign threads: each becomes an extra
            # thread root walked with the enclosing method's aliases, so
            # ``server = self`` closures resolve back to the outer class.
            for nested_cls, aliases in walker.nested_classes:
                for sub in nested_cls.body:
                    if not isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    key = (ci.name, f"{name}::{nested_cls.name}.{sub.name}")
                    nested = MethodSummary(
                        key=key, path=ci.path, line=sub.lineno,
                        is_thread_root=True,
                    )
                    nw = _MethodWalker(self, ci, nested, self_type=None)
                    nw.aliases.update(aliases)
                    nw.walk(sub)
                    self.methods[key] = nested


class _MethodWalker:
    """Flow-sensitive walk of one method body."""

    def __init__(
        self,
        model: ProgramModel,
        ci: ClassInfo,
        summary: MethodSummary,
        self_type: Optional[str],
    ) -> None:
        self.model = model
        self.ci = ci
        self.out = summary
        self.self_type = self_type
        self.held: Tuple[LockId, ...] = ()
        self.aliases: Dict[str, str] = {}
        self.bind_depth: Dict[str, int] = {}
        self.loop_depth = 0
        self.finally_depth = 0
        self._stmt = 0
        self._with_pins: Set[int] = set()
        self.nested_classes: List[Tuple[ast.ClassDef, Dict[str, str]]] = []

    # -- type resolution ------------------------------------------------
    def _type_of(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return self.self_type
            return self.aliases.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.model.resolve(self._type_of(expr.value))
            if base is not None:
                return base.typed_fields.get(expr.attr)
            return None
        if isinstance(expr, ast.Call):
            ctor = _dotted(expr.func)
            if ctor in _THREAD_CTORS:
                return "@Thread"
            if isinstance(expr.func, ast.Name) and self.model.resolve(
                expr.func.id
            ):
                return expr.func.id
        return None

    def _lock_id(self, expr: ast.AST) -> Optional[LockId]:
        """Resolve ``<recv>.<attr>`` to a lock field of a modeled class."""
        if not isinstance(expr, ast.Attribute):
            return None
        owner = self.model.resolve(self._type_of(expr.value))
        if owner is not None and owner.lockish(expr.attr):
            return (owner.name, expr.attr)
        return None

    # -- recording ------------------------------------------------------
    def _heldset(self) -> FrozenSet[LockId]:
        return frozenset(self.held)

    def _record_field(
        self, node: ast.Attribute, write: bool, mutator: bool = False
    ) -> None:
        owner = self.model.resolve(self._type_of(node.value))
        if owner is None:
            return
        name = node.attr
        if name in owner.properties:
            self.out.calls.append(
                CallEdge((owner.name, name), self._heldset(), node.lineno)
            )
            return
        if name in owner.methods:
            return
        if owner.lockish(name) or name in owner.sync_fields:
            # Synchronization objects are not data: only *rebinding* one
            # counts as a write (Event.clear()/set() are sync ops).
            if not write or mutator:
                return
        self.out.accesses.append(Access(
            cls=owner.name, field=name, write=write,
            held=self._heldset(), line=node.lineno, stmt=self._stmt,
            in_init=self.out.is_init,
        ))

    # -- entry ----------------------------------------------------------
    def walk(self, func: ast.AST) -> None:
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        for stmt in func.body:
            self.stmt(stmt)

    # -- statements -----------------------------------------------------
    def stmt(self, node: ast.stmt) -> None:
        self._stmt += 1
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested callables (retry bodies, progress callbacks) usually
            # run in place; walking them with the current held set keeps
            # e.g. a retried read inside a critical section visible.
            for stmt in node.body:
                self.stmt(stmt)
        elif isinstance(node, ast.ClassDef):
            self.nested_classes.append((node, dict(self.aliases)))
        elif isinstance(node, ast.Assign):
            self.expr(node.value)
            for target in node.targets:
                self._assign_target(target, node.value)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self.expr(node.value)
                self._assign_target(node.target, node.value)
        elif isinstance(node, ast.AugAssign):
            self.expr(node.value)
            if isinstance(node.target, ast.Attribute):
                self._record_field(node.target, write=True)
                self.expr(node.target.value)
            else:
                self.expr(node.target)
        elif isinstance(node, ast.Expr):
            self.expr(node.value)
        elif isinstance(node, (ast.Return, ast.Raise, ast.Assert,
                               ast.Delete, ast.Await)):
            for child in ast.iter_child_nodes(node):
                self.expr(child)
        elif isinstance(node, ast.If):
            self.expr(node.test)
            for stmt in node.body:
                self.stmt(stmt)
            for stmt in node.orelse:
                self.stmt(stmt)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self.expr(node.iter)
            if isinstance(node.target, ast.Name):
                self.bind_depth[node.target.id] = self.loop_depth + 1
            self.loop_depth += 1
            for stmt in node.body:
                self.stmt(stmt)
            self.loop_depth -= 1
            for stmt in node.orelse:
                self.stmt(stmt)
        elif isinstance(node, ast.While):
            self.expr(node.test)
            self.loop_depth += 1
            for stmt in node.body:
                self.stmt(stmt)
            self.loop_depth -= 1
            for stmt in node.orelse:
                self.stmt(stmt)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            self._with(node)
        elif isinstance(node, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            for stmt in node.body:
                self.stmt(stmt)
            for handler in node.handlers:
                for stmt in handler.body:
                    self.stmt(stmt)
            for stmt in node.orelse:
                self.stmt(stmt)
            self.finally_depth += 1
            for stmt in node.finalbody:
                self.stmt(stmt)
            self.finally_depth -= 1
        # Pass/Break/Continue/Import/Global: nothing to record.

    def _assign_target(self, target: ast.AST, value: ast.AST) -> None:
        if isinstance(target, ast.Name):
            t = self._type_of(value)
            if t is not None:
                self.aliases[target.id] = t
            else:
                self.aliases.pop(target.id, None)
            self.bind_depth[target.id] = self.loop_depth
        elif isinstance(target, ast.Attribute):
            self._record_field(target, write=True)
            self.expr(target.value)
        elif isinstance(target, ast.Subscript):
            if isinstance(target.value, ast.Attribute):
                self._record_field(target.value, write=True)
            self.expr(target.value)
            self.expr(target.slice)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, ast.Constant(value=None))
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, ast.Constant(value=None))

    def _with(self, node: ast.stmt) -> None:
        assert isinstance(node, (ast.With, ast.AsyncWith))
        acquired: List[LockId] = []
        for item in node.items:
            lock = self._lock_id(item.context_expr)
            if lock is not None:
                self.out.acquires.append(Acquire(
                    lock, self._heldset(), item.context_expr.lineno,
                    via_with=True,
                ))
                acquired.append(lock)
            elif (
                isinstance(item.context_expr, ast.Call)
                and isinstance(item.context_expr.func, ast.Attribute)
                and item.context_expr.func.attr == "pin"
            ):
                self._with_pins.add(id(item.context_expr))
            self.expr(item.context_expr)
            if item.optional_vars is not None:
                self._assign_target(
                    item.optional_vars, ast.Constant(value=None)
                )
        self.held = self.held + tuple(acquired)
        for stmt in node.body:
            self.stmt(stmt)
        self.held = self.held[: len(self.held) - len(acquired)]

    # -- expressions ----------------------------------------------------
    def expr(self, node: Optional[ast.AST]) -> None:
        if node is None or not isinstance(node, ast.AST):
            return
        if isinstance(node, ast.Call):
            self._call(node)
            return
        if isinstance(node, ast.Attribute):
            self._record_field(
                node, write=isinstance(node.ctx, (ast.Store, ast.Del))
            )
            self.expr(node.value)
            return
        if isinstance(node, ast.Subscript) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            if isinstance(node.value, ast.Attribute):
                self._record_field(node.value, write=True)
            self.expr(node.value)
            self.expr(node.slice)
            return
        if isinstance(node, ast.Lambda):
            self.expr(node.body)
            return
        for child in ast.iter_child_nodes(node):
            self.expr(child)

    def _call(self, node: ast.Call) -> None:
        func = node.func
        dotted = _dotted(func)
        if dotted is not None and (
            dotted in _BLOCKING_NAMES
            or any(dotted.startswith(p) for p in _BLOCKING_PREFIXES)
        ):
            self.out.blocking.append(
                Blocking(dotted, self._heldset(), node.lineno)
            )
        if dotted in ("os.replace", "os.rename"):
            self.out.renames.append(node.lineno)
        if isinstance(func, ast.Attribute):
            self._attr_call(node, func)
        elif isinstance(func, ast.Name):
            target = self.model.resolve(func.id)
            if target is not None and "__init__" in target.methods:
                self.out.calls.append(CallEdge(
                    (func.id, "__init__"), self._heldset(), node.lineno
                ))
        for arg in node.args:
            self.expr(arg)
        for kw in node.keywords:
            self.expr(kw.value)
        if isinstance(func, ast.Attribute):
            self.expr(func.value)

    def _attr_call(self, node: ast.Call, func: ast.Attribute) -> None:
        attr = func.attr
        dotted = _dotted(func)
        recv_type = self.model.resolve(self._type_of(func.value))
        # Container mutation counts as a write to the holding field —
        # unless the receiver is a modeled class that defines ``attr``
        # as a method (that is a call edge, not a list/dict mutation).
        if (
            attr in _MUTATORS
            and isinstance(func.value, ast.Attribute)
            and (recv_type is None or attr not in recv_type.methods)
        ):
            self._record_field(func.value, write=True, mutator=True)
        if (
            dotted in ("heapq.heappush", "heapq.heappop", "heapq.heapify")
            and node.args
            and isinstance(node.args[0], ast.Attribute)
        ):
            self._record_field(node.args[0], write=True)
        # Bare lock acquire/release (the with-statement is the safe form).
        lock = self._lock_id(func.value)
        if lock is not None and attr == "acquire":
            self.out.acquires.append(
                Acquire(lock, self._heldset(), node.lineno, via_with=False)
            )
        if lock is not None and attr == "release":
            self.out.releases.append(
                Release(lock, node.lineno, self.finally_depth > 0)
            )
        # Blocking attribute calls.
        if attr in _BLOCKING_ATTRS or attr == "open":
            self.out.blocking.append(
                Blocking(dotted or f".{attr}", self._heldset(), node.lineno)
            )
        if attr == "wait":
            self._wait_call(node, func)
        if attr == "join" and self._type_of(func.value) == "@Thread":
            self.out.blocking.append(
                Blocking("Thread.join", self._heldset(), node.lineno)
            )
        # Resource pairing.
        owner = recv_type
        if attr == "pin" and owner is not None and owner.has_pin:
            self.out.pins.append(PinUse(
                owner.name, node.lineno, id(node) in self._with_pins
            ))
        if attr in ("begin_run", "reset"):
            recv = _dotted(func.value) or "?"
            root = recv.split(".", 1)[0]
            self.out.claims.append(ClaimEvent(
                kind="begin" if attr == "begin_run" else "reset",
                recv=recv,
                depth=self.loop_depth,
                bind_depth=self.bind_depth.get(root, 0),
                line=node.lineno,
            ))
        # Call edges through resolved receivers.
        if owner is not None and attr in owner.methods:
            self.out.calls.append(
                CallEdge((owner.name, attr), self._heldset(), node.lineno)
            )

    def _wait_call(self, node: ast.Call, func: ast.Attribute) -> None:
        owner = self.model.resolve(self._type_of(func.value))
        if owner is None or not isinstance(func.value, ast.Attribute):
            return
        name = func.value.attr
        if name in owner.sync_fields:
            self.out.blocking.append(
                Blocking("Event.wait", self._heldset(), node.lineno)
            )
        elif name in owner.cond_fields:
            # cond.wait releases the condition's lock while blocked —
            # waiting with it held is the intended pattern, waiting
            # without it is a bug that raises at runtime anyway.
            if (owner.name, name) not in self.held:
                self.out.blocking.append(
                    Blocking("Condition.wait", self._heldset(), node.lineno)
                )
