"""``repro.checks.race`` — whole-program concurrency analyzer.

Where the RC001–RC010 lint rules are per-file pattern checks, this
package reasons about the program: which methods run on which threads,
which fields those threads share, which lock each shared field is
guarded by, in what order locks nest, and whether paired resources
(epoch pins, bare lock acquires, resilience budgets, journal file
handles) balance on every path. Findings surface through the same
:class:`~repro.checks.lint.framework.Violation` / ``# repro: noqa``
machinery as the lint rules:

========  ==============================================================
RC101     unguarded write to a shared field (no lock on any write path)
RC102     inconsistent guards across writes, or a torn multi-word read
RC103     lock-acquisition-order cycle / non-reentrant re-acquisition
RC104     blocking call (fault point, I/O, sleep, join, wait) under a
          lock that may be held
RC105     unbalanced resource pairing: leaked ``pin()``, bare
          ``acquire()`` without finally-``release()``, double-claimed
          budget, file opened in ``__init__`` and never closed
========  ==============================================================

Use :func:`analyze` (or ``repro-coregraph check --races``). The analyzer
is sound only over class methods — module-level functions execute on the
caller's thread under the caller's locks, so their bodies are out of
scope by design (see :mod:`repro.checks.race.model`).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.checks.lint.framework import (
    ALL_RULES_SENTINEL,
    Violation,
    _parse_suppressions,
    discover_files,
)
from repro.checks.race.analysis import RaceAnalysis
from repro.checks.race.model import ProgramModel
from repro.checks.race.pairing import check_pairing

PathLike = Union[str, Path]


@dataclass(frozen=True)
class RaceRule:
    """Catalog metadata for one analyzer rule (docs-sync uses this)."""

    id: str
    title: str


RACE_RULES: Tuple[RaceRule, ...] = (
    RaceRule("RC101", "unguarded write to a shared field"),
    RaceRule("RC102", "inconsistent lock guards / torn multi-word read"),
    RaceRule("RC103", "lock-acquisition-order cycle"),
    RaceRule("RC104", "blocking call under a held lock"),
    RaceRule("RC105", "unbalanced resource pairing (pin/acquire/budget/file)"),
)


def race_rule_by_id(rule_id: str) -> RaceRule:
    for rule in RACE_RULES:
        if rule.id == rule_id:
            return rule
    raise KeyError(rule_id)


def build_model(paths: Iterable[PathLike]) -> ProgramModel:
    """Parse every ``.py`` under ``paths`` into one program model."""
    return ProgramModel.build(discover_files(paths))


def analyze(
    paths: Iterable[PathLike],
    rules: Optional[Iterable[str]] = None,
    respect_suppressions: bool = True,
) -> List[Violation]:
    """Run the concurrency analyzer over ``paths``.

    Returns violations sorted like the lint driver's; ``# repro: noqa``
    comments are honored unless ``respect_suppressions`` is off (the
    stale-suppression audit needs the raw findings).
    """
    model = build_model(paths)
    analysis = RaceAnalysis(model)
    found = analysis.violations()
    found.extend(check_pairing(model))
    if rules is not None:
        wanted = set(rules)
        found = [v for v in found if v.rule in wanted]
    if respect_suppressions:
        suppressions = {
            path: _parse_suppressions(source)
            for path, source in model.sources.items()
        }
        found = [
            v for v in found
            if not _suppressed(suppressions.get(v.path), v.rule, v.line)
        ]
    unique: Dict[Tuple[str, int, str, str], Violation] = {}
    for v in found:
        unique.setdefault((str(v.path), v.line, v.rule, v.message), v)
    return sorted(
        unique.values(), key=lambda v: (str(v.path), v.line, v.rule)
    )


def _suppressed(
    parsed: Optional[Tuple[Dict[int, Set[str]], Set[str]]],
    rule_id: str,
    line: int,
) -> bool:
    if parsed is None:
        return False
    line_sup, file_sup = parsed
    if rule_id in file_sup:
        return True
    ids = line_sup.get(line)
    if ids is None:
        return False
    return ALL_RULES_SENTINEL in ids or rule_id in ids
