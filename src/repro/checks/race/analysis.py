"""Lock-discipline and deadlock-order analysis over a :class:`ProgramModel`.

Pipeline (all interprocedural, over the class-method call graph):

1. **Roots.** Every ``threading.Thread(target=self.m)`` method is a
   thread root; methods of classes defined inside a method (HTTP handler
   pattern) are roots too, since stdlib servers invoke them from their
   own threads. One synthetic *main* root covers the public methods of
   every class that is not constructor-owned by another modeled class —
   external code can call those on the main thread at any time. A thread
   root counts as concurrent with itself (pools start many copies), the
   main root as a single caller.

2. **Sharedness.** A field is *shared* when the roots that reach it (BFS
   over call edges, constructor accesses excluded) could run
   concurrently — i.e. at least one thread root reaches it.

3. **Lock discipline.** A must-held fixpoint propagates the locks
   guaranteed at method entry (intersection over call sites; roots start
   empty). Shared fields whose writes never hold any lock are RC101;
   writes that miss a lock other writes hold are RC102 (inconsistent
   guard); a statement reading several fields guarded by the same lock
   without holding it is RC102 too (torn multi-word read).

4. **Lock order.** A may-held fixpoint (union over call sites) labels
   every acquisition with the locks possibly held around it; cycles in
   the resulting order graph are RC103, and blocking calls (fault
   points, file I/O, sleeps, joins, event waits) under any may-held lock
   are RC104.

Methods never reached from any root are skipped by the discipline passes
(their lock context is unknowable), but still checked for RC104 with
their local held sets — a sleep inside ``with self._lock`` is wrong no
matter who calls it.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.checks.lint.framework import Violation
from repro.checks.race.model import (
    Access,
    LockId,
    MethodKey,
    MethodSummary,
    ProgramModel,
)

#: Dunders external code invokes directly; other ``_``-prefixed methods
#: are internal and only analyzed as reached through real call edges.
_PUBLIC_DUNDERS = {"__init__", "__call__", "__enter__", "__exit__"}

Field = Tuple[str, str]  # (class name, field name)


def _lock_name(lock: LockId) -> str:
    return f"{lock[0]}.{lock[1]}"


def _locks_name(locks: Iterable[LockId]) -> str:
    return ", ".join(sorted(_lock_name(lk) for lk in locks))


def _is_public(name: str) -> bool:
    if name in _PUBLIC_DUNDERS:
        return True
    return not name.startswith("_")


class RaceAnalysis:
    """Runs the discipline/order passes; ``violations()`` is the result."""

    def __init__(self, model: ProgramModel) -> None:
        self.model = model
        self.thread_roots: List[MethodKey] = sorted(
            key for key, s in model.methods.items() if s.is_thread_root
        )
        self.main_frontier: List[MethodKey] = sorted(
            (ci.name, m)
            for ci in model.classes.values()
            if not ci.owned
            for m in ci.methods
            if _is_public(m) and (ci.name, m) in model.methods
        )
        self.entry_must = self._fixpoint_must()
        self.entry_may = self._fixpoint_may()
        self.root_touch = self._root_touches()
        self.shared = self._shared_fields()
        self.owner_locks = self._owner_locks()

    # ------------------------------------------------------------------
    # Fixpoints
    # ------------------------------------------------------------------
    def _roots(self) -> Set[MethodKey]:
        return set(self.thread_roots) | set(self.main_frontier)

    def _fixpoint_must(self) -> Dict[MethodKey, Optional[FrozenSet[LockId]]]:
        # None = unreached (top); roots start at the empty set and the
        # value at each method only ever shrinks, so this terminates.
        must: Dict[MethodKey, Optional[FrozenSet[LockId]]] = {
            key: None for key in self.model.methods
        }
        for key in self._roots():
            must[key] = frozenset()
        changed = True
        while changed:
            changed = False
            for caller, summary in self.model.methods.items():
                base = must[caller]
                if base is None:
                    continue
                for call in summary.calls:
                    if call.callee not in must:
                        continue
                    contrib = base | call.held
                    cur = must[call.callee]
                    new = contrib if cur is None else cur & contrib
                    if new != cur:
                        must[call.callee] = new
                        changed = True
        return must

    def _fixpoint_may(self) -> Dict[MethodKey, FrozenSet[LockId]]:
        may: Dict[MethodKey, FrozenSet[LockId]] = {
            key: frozenset() for key in self.model.methods
        }
        changed = True
        while changed:
            changed = False
            for caller, summary in self.model.methods.items():
                if self.entry_must[caller] is None:
                    continue  # unreached callers contribute nothing
                base = may[caller]
                for call in summary.calls:
                    if call.callee not in may:
                        continue
                    contrib = base | call.held
                    if not contrib <= may[call.callee]:
                        may[call.callee] = may[call.callee] | contrib
                        changed = True
        return may

    # ------------------------------------------------------------------
    # Sharedness
    # ------------------------------------------------------------------
    def _reach(self, frontier: Iterable[MethodKey]) -> Set[MethodKey]:
        seen: Set[MethodKey] = set()
        stack = [key for key in frontier if key in self.model.methods]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            for call in self.model.methods[key].calls:
                if call.callee in self.model.methods:
                    stack.append(call.callee)
        return seen

    def _root_touches(self) -> Dict[Field, Set[str]]:
        """field -> ids of the roots whose reach accesses it."""
        touch: Dict[Field, Set[str]] = defaultdict(set)
        for root in self.thread_roots:
            rid = f"thread:{root[0]}.{root[1]}"
            for key in self._reach([root]):
                for a in self.model.methods[key].accesses:
                    if not a.in_init:
                        touch[(a.cls, a.field)].add(rid)
        for key in self._reach(self.main_frontier):
            for a in self.model.methods[key].accesses:
                if not a.in_init:
                    touch[(a.cls, a.field)].add("main")
        return touch

    def _shared_fields(self) -> Set[Field]:
        shared: Set[Field] = set()
        for fld, roots in self.root_touch.items():
            # A thread root is concurrent with itself (pools spawn many
            # copies of the same entry point), main is a single caller.
            weight = sum(1 if r == "main" else 2 for r in roots)
            if weight >= 2:
                shared.add(fld)
        return shared

    # ------------------------------------------------------------------
    # Discipline
    # ------------------------------------------------------------------
    def _held_at(self, key: MethodKey, local: FrozenSet[LockId]
                 ) -> FrozenSet[LockId]:
        entry = self.entry_must[key]
        return local if entry is None else entry | local

    def _analyzed_accesses(self) -> List[Tuple[MethodKey, Access]]:
        out = []
        for key, summary in self.model.methods.items():
            if self.entry_must[key] is None or summary.is_init:
                continue
            for a in summary.accesses:
                if not a.in_init:
                    out.append((key, a))
        return out

    def _owner_locks(self) -> Dict[Field, FrozenSet[LockId]]:
        """Locks held at *every* write of a field (its inferred guards)."""
        inter: Dict[Field, Optional[FrozenSet[LockId]]] = {}
        for key, a in self._analyzed_accesses():
            if not a.write:
                continue
            fld = (a.cls, a.field)
            held = self._held_at(key, a.held)
            cur = inter.get(fld)
            inter[fld] = held if cur is None else cur & held
        return {
            fld: locks for fld, locks in inter.items()
            if locks  # only fields with a consistent non-empty guard
        }

    def check_discipline(self) -> List[Violation]:
        out: List[Violation] = []
        writes: Dict[Field, List[Tuple[MethodKey, Access]]] = defaultdict(list)
        for key, a in self._analyzed_accesses():
            if a.write:
                writes[(a.cls, a.field)].append((key, a))
        for fld in sorted(self.shared):
            wlist = writes.get(fld)
            if not wlist or fld in self.owner_locks:
                continue
            helds = [self._held_at(key, a.held) for key, a in wlist]
            count = Counter(lock for held in helds for lock in held)
            roots = ", ".join(sorted(self.root_touch[fld]))
            if count:
                guard, _ = count.most_common(1)[0]
                for (key, a), held in zip(wlist, helds):
                    if guard not in held:
                        out.append(Violation(
                            rule="RC102",
                            path=self.model.methods[key].path,
                            line=a.line,
                            message=(
                                f"write to shared field {fld[0]}.{fld[1]} "
                                f"without {_lock_name(guard)}, which other "
                                f"writes hold (inconsistent guard; reached "
                                f"from: {roots})"
                            ),
                        ))
            else:
                for key, a in wlist:
                    out.append(Violation(
                        rule="RC101",
                        path=self.model.methods[key].path,
                        line=a.line,
                        message=(
                            f"unguarded write to shared field "
                            f"{fld[0]}.{fld[1]} (no lock is held on any "
                            f"write path; reached from: {roots})"
                        ),
                    ))
        out.extend(self._check_torn_reads())
        return out

    def _check_torn_reads(self) -> List[Violation]:
        """RC102: one statement reads >=2 fields of a guard, unlocked."""
        out: List[Violation] = []
        for key, summary in sorted(self.model.methods.items()):
            if self.entry_must[key] is None or summary.is_init:
                continue
            by_stmt: Dict[int, List[Access]] = defaultdict(list)
            for a in summary.accesses:
                if not a.write and not a.in_init:
                    by_stmt[a.stmt].append(a)
            for stmt, reads in sorted(by_stmt.items()):
                unlocked: Dict[LockId, Set[Field]] = defaultdict(set)
                lines: Dict[LockId, int] = {}
                for a in reads:
                    fld = (a.cls, a.field)
                    held = self._held_at(key, a.held)
                    for lock in self.owner_locks.get(fld, ()):
                        if lock not in held:
                            unlocked[lock].add(fld)
                            lines[lock] = min(
                                lines.get(lock, a.line), a.line
                            )
                for lock, flds in sorted(unlocked.items()):
                    if len(flds) < 2 or not flds & self.shared:
                        continue
                    names = ", ".join(
                        f"{c}.{f}" for c, f in sorted(flds)
                    )
                    out.append(Violation(
                        rule="RC102",
                        path=summary.path,
                        line=lines[lock],
                        message=(
                            f"statement reads {len(flds)} fields guarded "
                            f"by {_lock_name(lock)} without holding it "
                            f"({names}) — torn multi-word read"
                        ),
                    ))
        return out

    # ------------------------------------------------------------------
    # Lock order + blocking
    # ------------------------------------------------------------------
    def check_lock_order(self) -> List[Violation]:
        edges: Dict[Tuple[LockId, LockId], Tuple[MethodSummary, int]] = {}
        for key, summary in sorted(self.model.methods.items()):
            for acq in summary.acquires:
                context = self.entry_may.get(key, frozenset()) | acq.held
                for held in context:
                    edge = (held, acq.lock)
                    if edge not in edges:
                        edges[edge] = (summary, acq.line)
        out: List[Violation] = []
        adj: Dict[LockId, Set[LockId]] = defaultdict(set)
        for a, b in edges:
            if a != b:
                adj[a].add(b)
        reported: Set[FrozenSet[LockId]] = set()
        for (a, b), (summary, line) in sorted(
            edges.items(), key=lambda kv: (str(kv[1][0].path), kv[1][1])
        ):
            if a == b:
                ci = self.model.resolve(a[0])
                if ci is not None and not ci.reentrant(a[1]):
                    out.append(Violation(
                        rule="RC103",
                        path=summary.path,
                        line=line,
                        message=(
                            f"re-acquisition of non-reentrant lock "
                            f"{_lock_name(a)} while already held "
                            f"(self-deadlock)"
                        ),
                    ))
                continue
            if not self._reaches(adj, b, a):
                continue
            cyc = frozenset((a, b))
            if cyc in reported:
                continue
            reported.add(cyc)
            out.append(Violation(
                rule="RC103",
                path=summary.path,
                line=line,
                message=(
                    f"lock-order cycle: {_lock_name(b)} is acquired "
                    f"while holding {_lock_name(a)} here, but the "
                    f"reverse order also occurs (deadlock potential)"
                ),
            ))
        return out

    @staticmethod
    def _reaches(adj: Dict[LockId, Set[LockId]], src: LockId,
                 dst: LockId) -> bool:
        seen: Set[LockId] = set()
        stack = [src]
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adj.get(node, ()))
        return False

    def check_blocking(self) -> List[Violation]:
        out: List[Violation] = []
        for key, summary in sorted(self.model.methods.items()):
            entry = self.entry_may.get(key, frozenset())
            for b in summary.blocking:
                context = entry | b.held
                if not context:
                    continue
                via = "" if b.held else " (held by callers)"
                out.append(Violation(
                    rule="RC104",
                    path=summary.path,
                    line=b.line,
                    message=(
                        f"blocking call {b.what} while "
                        f"{_locks_name(context)} may be held{via} — "
                        f"stalls every contender (and a crash here dies "
                        f"inside the critical section)"
                    ),
                ))
        return out

    # ------------------------------------------------------------------
    def violations(self) -> List[Violation]:
        out = self.check_discipline()
        out.extend(self.check_lock_order())
        out.extend(self.check_blocking())
        return out
