"""Resource-pairing (typestate) checks: pins, bare locks, budgets, files.

These are intraprocedural protocol checks over the walker's event
streams — the shapes that leak resources on exception edges:

* ``pin()`` on an epoch-store-like object (any modeled class with a
  ``pin`` method) must be consumed by a ``with`` statement. Calling it
  bare — or driving ``__enter__`` by hand — skips the ``finally`` that
  unpins, so one exception strands the epoch refcount and the store can
  never retire that epoch.
* ``lock.acquire()`` outside a ``with`` must have a ``release()`` in a
  ``finally`` block of the same method; anything else leaks the lock the
  first time the critical section raises.
* A :class:`~repro.resilience.budget.Budget` is single-claim:
  ``begin_run`` inside a loop on a budget bound outside it (with no
  ``reset`` alongside) raises ``BudgetReuseError`` on the second lap, as
  does a straight-line double claim.
* A file handle opened in ``__init__`` pairs with a ``close()``
  somewhere on the class; a class that opens and never closes leaks the
  descriptor (and, for journal-style streams, the crash-visible
  ``.partial`` file never gets renamed into place).
"""

from __future__ import annotations

from typing import List

from repro.checks.lint.framework import Violation
from repro.checks.race.model import ProgramModel

RULE = "RC105"


def check_pairing(model: ProgramModel) -> List[Violation]:
    out: List[Violation] = []
    for key, summary in sorted(model.methods.items()):
        for pin in summary.pins:
            if pin.in_with:
                continue
            out.append(Violation(
                rule=RULE,
                path=summary.path,
                line=pin.line,
                message=(
                    f"{pin.owner}.pin() outside a with-statement — an "
                    f"exception before unpin strands the epoch refcount"
                ),
            ))
        released_in_finally = {
            r.lock for r in summary.releases if r.in_finally
        }
        for acq in summary.acquires:
            if acq.via_with or acq.lock in released_in_finally:
                continue
            out.append(Violation(
                rule=RULE,
                path=summary.path,
                line=acq.line,
                message=(
                    f"{acq.lock[0]}.{acq.lock[1]}.acquire() without a "
                    f"release() in a finally — the lock leaks on "
                    f"exception paths (use a with-statement)"
                ),
            ))
        out.extend(_check_claims(summary))
    for ci in sorted(model.classes.values(), key=lambda c: c.name):
        for fld, line in sorted(ci.opens_in_init.items()):
            if fld in ci.closes:
                continue
            out.append(Violation(
                rule=RULE,
                path=ci.path,
                line=line,
                message=(
                    f"{ci.name}.__init__ opens self.{fld} but no method "
                    f"of the class closes it — the handle (and any "
                    f"rename-on-close protocol) leaks"
                ),
            ))
    return out


def _check_claims(summary) -> List[Violation]:
    out: List[Violation] = []
    by_recv: dict = {}
    for ev in summary.claims:
        by_recv.setdefault(ev.recv, []).append(ev)
    for recv, events in sorted(by_recv.items()):
        events.sort(key=lambda e: e.line)
        resets = [e for e in events if e.kind == "reset"]
        last_begin = None
        for ev in events:
            if ev.kind == "reset":
                last_begin = None
                continue
            # begin_run inside a loop on a budget bound outside it, with
            # no reset at (or below) that loop level to re-arm it.
            if ev.depth > ev.bind_depth and not any(
                r.depth >= ev.depth for r in resets
            ):
                out.append(Violation(
                    rule=RULE,
                    path=summary.path,
                    line=ev.line,
                    message=(
                        f"{recv}.begin_run() inside a loop on a budget "
                        f"created outside it — the second iteration "
                        f"raises BudgetReuseError (budgets are "
                        f"single-claim; reset() or build one per lap)"
                    ),
                ))
                continue
            if last_begin is not None and ev.depth == last_begin.depth:
                out.append(Violation(
                    rule=RULE,
                    path=summary.path,
                    line=ev.line,
                    message=(
                        f"{recv}.begin_run() re-claims a budget already "
                        f"claimed at line {last_begin.line} without an "
                        f"intervening reset()"
                    ),
                ))
            last_begin = ev
    return out
