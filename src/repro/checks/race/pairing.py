"""Resource-pairing (typestate) checks: pins, bare locks, budgets, files.

These are intraprocedural protocol checks over the walker's event
streams — the shapes that leak resources on exception edges:

* ``pin()`` on an epoch-store-like object (any modeled class with a
  ``pin`` method) must be consumed by a ``with`` statement. Calling it
  bare — or driving ``__enter__`` by hand — skips the ``finally`` that
  unpins, so one exception strands the epoch refcount and the store can
  never retire that epoch.
* ``lock.acquire()`` outside a ``with`` must have a ``release()`` in a
  ``finally`` block of the same method; anything else leaks the lock the
  first time the critical section raises.
* A :class:`~repro.resilience.budget.Budget` is single-claim:
  ``begin_run`` inside a loop on a budget bound outside it (with no
  ``reset`` alongside) raises ``BudgetReuseError`` on the second lap, as
  does a straight-line double claim.
* A file handle opened in ``__init__`` — or anywhere else a method
  stores one on ``self`` (WAL segment rotation, journal reopen) — pairs
  with a ``close()`` somewhere on the class; a class that opens and
  never closes leaks the descriptor (and, for journal-style streams,
  the crash-visible ``.partial`` file never gets renamed into place).
* ``os.replace``/``os.rename`` must be preceded by an ``os.fsync`` in
  the same method (or in a callee invoked before it): rename atomicity
  orders the *names* only, so a renamed-but-unsynced file can legally
  read back empty after a power loss — the WAL/snapshot durability
  contract dies silently. Route writes through
  :func:`repro.resilience.atomic.atomic_path` instead.
"""

from __future__ import annotations

from typing import List

from repro.checks.lint.framework import Violation
from repro.checks.race.model import ProgramModel

RULE = "RC105"


def check_pairing(model: ProgramModel) -> List[Violation]:
    out: List[Violation] = []
    for key, summary in sorted(model.methods.items()):
        for pin in summary.pins:
            if pin.in_with:
                continue
            out.append(Violation(
                rule=RULE,
                path=summary.path,
                line=pin.line,
                message=(
                    f"{pin.owner}.pin() outside a with-statement — an "
                    f"exception before unpin strands the epoch refcount"
                ),
            ))
        released_in_finally = {
            r.lock for r in summary.releases if r.in_finally
        }
        for acq in summary.acquires:
            if acq.via_with or acq.lock in released_in_finally:
                continue
            out.append(Violation(
                rule=RULE,
                path=summary.path,
                line=acq.line,
                message=(
                    f"{acq.lock[0]}.{acq.lock[1]}.acquire() without a "
                    f"release() in a finally — the lock leaks on "
                    f"exception paths (use a with-statement)"
                ),
            ))
        out.extend(_check_claims(summary))
        out.extend(_check_renames(model, key, summary))
    for ci in sorted(model.classes.values(), key=lambda c: c.name):
        opens = dict(ci.opens_in_init)
        opens.update(ci.opens_elsewhere)
        for fld, line in sorted(opens.items()):
            if fld in ci.closes:
                continue
            where = (
                "__init__" if fld in ci.opens_in_init else "a method"
            )
            out.append(Violation(
                rule=RULE,
                path=ci.path,
                line=line,
                message=(
                    f"{ci.name}: {where} opens self.{fld} but no method "
                    f"of the class closes it — the handle (and any "
                    f"rename-on-close protocol) leaks"
                ),
            ))
    return out


def _method_fsyncs(summary) -> List[int]:
    return [b.line for b in summary.blocking if b.what == "os.fsync"]


def _check_renames(model: ProgramModel, key, summary) -> List[Violation]:
    """fsync-before-rename: every ``os.replace``/``os.rename`` needs an
    ``os.fsync`` earlier in the method, or a pre-rename call into a
    method that fsyncs (the helper-mediated form)."""
    out: List[Violation] = []
    for rline in summary.renames:
        direct = any(line < rline for line in _method_fsyncs(summary))
        helper = any(
            edge.line < rline
            and edge.callee in model.methods
            and _method_fsyncs(model.methods[edge.callee])
            for edge in summary.calls
        )
        if direct or helper:
            continue
        out.append(Violation(
            rule=RULE,
            path=summary.path,
            line=rline,
            message=(
                f"{key[0]}.{key[1]} renames a file with no fsync before "
                f"it — after a crash the new name can surface over empty "
                f"data (fsync the temp file first, or use atomic_path)"
            ),
        ))
    return out


def _check_claims(summary) -> List[Violation]:
    out: List[Violation] = []
    by_recv: dict = {}
    for ev in summary.claims:
        by_recv.setdefault(ev.recv, []).append(ev)
    for recv, events in sorted(by_recv.items()):
        events.sort(key=lambda e: e.line)
        resets = [e for e in events if e.kind == "reset"]
        last_begin = None
        for ev in events:
            if ev.kind == "reset":
                last_begin = None
                continue
            # begin_run inside a loop on a budget bound outside it, with
            # no reset at (or below) that loop level to re-arm it.
            if ev.depth > ev.bind_depth and not any(
                r.depth >= ev.depth for r in resets
            ):
                out.append(Violation(
                    rule=RULE,
                    path=summary.path,
                    line=ev.line,
                    message=(
                        f"{recv}.begin_run() inside a loop on a budget "
                        f"created outside it — the second iteration "
                        f"raises BudgetReuseError (budgets are "
                        f"single-claim; reset() or build one per lap)"
                    ),
                ))
                continue
            if last_begin is not None and ev.depth == last_begin.depth:
                out.append(Violation(
                    rule=RULE,
                    path=summary.path,
                    line=ev.line,
                    message=(
                        f"{recv}.begin_run() re-claims a budget already "
                        f"claimed at line {last_begin.line} without an "
                        f"intervening reset()"
                    ),
                ))
            last_begin = ev
    return out
