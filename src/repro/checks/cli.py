"""``repro-coregraph check``: static analysis, races, noqa audit, smoke.

Entry points, usable programmatically or via the harness CLI:

* :func:`run_static` — lint the given paths with the RC001–RC010 rule
  catalog. Exit code 1 when any violation survives suppression.
  Optionally also runs ``ruff`` and ``mypy`` when they are installed
  (``--ruff`` / ``--mypy``; both skip gracefully with a note when the
  tool is absent, so the subcommand works in the minimal container and
  is strict in CI).
* :func:`run_races` — the whole-program concurrency analyzer
  (RC101–RC105, :mod:`repro.checks.race`).
* :func:`run_strict_noqa` — the stale/unjustified suppression audit
  (RC100, :mod:`repro.checks.noqa`).
* :func:`run_sanitize_smoke` — enable the runtime sanitizer and drive a
  full two-phase evaluation of every query kind over the example
  dataset, plus one round trip through each alternative engine. Exit
  code 1 on the first :class:`SanitizerViolation`.

Every analysis mode takes ``as_json``: instead of the human report it
prints one JSON object, ``{"violations": [{"path", "line", "rule",
"message"}, ...], "count": N}`` — stable fields CI consumes for PR
annotations (see ``.github/problem-matcher.json`` for the text form).
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from typing import Dict, List, Optional, Sequence

from repro.checks.lint.framework import Violation

DEFAULT_PATHS = ("src/repro",)


def collect_static(
    paths: Optional[Sequence[str]] = None,
    rules: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Surviving lint violations for ``paths`` (default ``src/repro``)."""
    from repro.checks.lint import ALL_RULES, rule_by_id, run_lint

    selected = ALL_RULES if not rules else [rule_by_id(r) for r in rules]
    return run_lint(paths or DEFAULT_PATHS, rules=selected)


def collect_races(
    paths: Optional[Sequence[str]] = None,
    rules: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Surviving concurrency-analyzer violations for ``paths``."""
    from repro.checks.race import analyze

    return analyze(paths or DEFAULT_PATHS, rules=rules)


def collect_noqa(
    paths: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Stale/unjustified suppressions (RC100) under ``paths``."""
    from repro.checks.noqa import audit

    return audit(paths or DEFAULT_PATHS)


def violations_payload(violations: Sequence[Violation]) -> Dict:
    """The machine-readable form of a violation list."""
    return {
        "violations": [
            {
                "path": str(v.path),
                "line": v.line,
                "rule": v.rule,
                "message": v.message,
            }
            for v in violations
        ],
        "count": len(violations),
    }


def _report(
    violations: Sequence[Violation], as_json: bool, clean: str
) -> int:
    """Print the report (text or JSON); 0 = clean, 1 = violations."""
    if as_json:
        print(json.dumps(violations_payload(violations), indent=2))
    elif not violations:
        print(clean)
    else:
        from repro.checks.lint import render_report

        print(render_report(violations))
    return 1 if violations else 0


def run_static(
    paths: Optional[Sequence[str]] = None,
    rules: Optional[Sequence[str]] = None,
    with_ruff: bool = False,
    with_mypy: bool = False,
    as_json: bool = False,
) -> int:
    """Lint ``paths`` (default ``src/repro``); 0 = clean, 1 = violations."""
    violations = collect_static(paths, rules)
    rc = _report(violations, as_json, clean="static analysis: clean")
    for tool, wanted, argv in (
        ("ruff", with_ruff, ["ruff", "check", *(paths or DEFAULT_PATHS)]),
        ("mypy", with_mypy, ["mypy"]),
    ):
        if not wanted:
            continue
        if shutil.which(tool) is None:
            print(f"{tool}: not installed, skipping (CI runs it)")
            continue
        proc = subprocess.run(argv)
        rc = rc or proc.returncode
    return rc


def run_races(
    paths: Optional[Sequence[str]] = None,
    rules: Optional[Sequence[str]] = None,
    as_json: bool = False,
) -> int:
    """Concurrency analysis of ``paths``; 0 = clean, 1 = violations."""
    violations = collect_races(paths, rules)
    return _report(violations, as_json, clean="race analysis: clean")


def run_strict_noqa(
    paths: Optional[Sequence[str]] = None,
    as_json: bool = False,
) -> int:
    """Suppression audit of ``paths``; 0 = clean, 1 = findings."""
    violations = collect_noqa(paths)
    return _report(
        violations, as_json,
        clean="noqa audit: every suppression is live and justified",
    )


def run_sanitize_smoke(sources: Sequence[int] = (0,)) -> int:
    """Sanitized end-to-end run over the example dataset; 0 = no violations.

    Covers every query kind through ``two_phase`` (Theorem 1 triangle
    certificates on for the weighted MIN/MAX kinds) and each alternative
    engine once, so every probe site executes at least once.
    """
    import numpy as np

    from repro.checks.sanitize import SanitizerViolation, enabled
    from repro.core.identify import build_core_graph
    from repro.core.twophase import two_phase
    from repro.core.unweighted import build_unweighted_core_graph
    from repro.datasets.example import example_graph
    from repro.engines.async_engine import async_evaluate
    from repro.engines.batch import evaluate_batch
    from repro.engines.delta_stepping import delta_stepping
    from repro.engines.frontier import evaluate_query
    from repro.engines.pull import direction_optimizing_evaluate
    from repro.engines.scalar import scalar_evaluate
    from repro.queries.registry import ALL_SPECS

    g = example_graph()
    checks = 0
    try:
        with enabled():
            for spec in ALL_SPECS:
                if spec.identification == "algorithm2":
                    cg = build_unweighted_core_graph(g, num_hubs=2, spec=spec)
                else:
                    cg = build_core_graph(g, spec, num_hubs=2)
                triangle = (
                    spec.uses_weights and not spec.multi_source
                )
                for source in sources:
                    src = None if spec.multi_source else int(source)
                    result = two_phase(
                        g, cg, spec, source=src, triangle=triangle
                    )
                    baseline = evaluate_query(g, spec, source=src)
                    if not np.allclose(
                        result.values, baseline, equal_nan=True
                    ):
                        print(f"check: {spec.name} two_phase result "
                              "diverges from direct evaluation")
                        return 1
                    checks += 1
            for source in sources:
                src = int(source)
                async_evaluate(g, ALL_SPECS[0], source=src, chunk_size=2)
                scalar_evaluate(g, ALL_SPECS[0], source=src)
                direction_optimizing_evaluate(g, ALL_SPECS[0], source=src)
                evaluate_batch(g, ALL_SPECS[0], [src])
                delta_stepping(g, ALL_SPECS[0], source=src)
                checks += 5
    except SanitizerViolation as exc:
        print(f"check: sanitizer violation: {exc}")
        return 1
    print(f"check: sanitized smoke clean ({checks} sanitized runs)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point mirroring ``repro-coregraph check``."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro-checks")
    parser.add_argument("--static", action="store_true",
                        help="run the RC static-analysis rules")
    parser.add_argument("--races", action="store_true",
                        help="run the whole-program concurrency analyzer "
                             "(RC101-RC105)")
    parser.add_argument("--strict-noqa", action="store_true",
                        help="fail on stale or unjustified '# repro: noqa' "
                             "suppressions (RC100)")
    parser.add_argument("--sanitize-run", action="store_true",
                        help="run the sanitized end-to-end smoke")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit violations as one JSON object instead "
                             "of the text report")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories to lint (default src/repro)")
    parser.add_argument("--rule", action="append", dest="rules",
                        help="restrict to specific rule ids (repeatable)")
    parser.add_argument("--ruff", action="store_true",
                        help="also run ruff when installed")
    parser.add_argument("--mypy", action="store_true",
                        help="also run mypy when installed")
    args = parser.parse_args(argv)
    if not any((args.static, args.races, args.strict_noqa,
                args.sanitize_run)):
        args.static = True
    rc = 0
    if args.static:
        rc = run_static(args.paths or None, rules=args.rules,
                        with_ruff=args.ruff, with_mypy=args.mypy,
                        as_json=args.as_json)
    if args.races:
        rc = run_races(args.paths or None, rules=args.rules,
                       as_json=args.as_json) or rc
    if args.strict_noqa:
        rc = run_strict_noqa(args.paths or None,
                             as_json=args.as_json) or rc
    if args.sanitize_run:
        rc = run_sanitize_smoke() or rc
    return rc


if __name__ == "__main__":
    sys.exit(main())
