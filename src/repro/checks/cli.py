"""``repro-coregraph check``: run the static analyzer and sanitizer smoke.

Two entry points, usable programmatically or via the harness CLI:

* :func:`run_static` — lint the given paths with the RC rule catalog.
  Exit code 1 when any violation survives suppression. Optionally also
  runs ``ruff`` and ``mypy`` when they are installed (``--ruff`` /
  ``--mypy``; both skip gracefully with a note when the tool is absent,
  so the subcommand works in the minimal container and is strict in CI).
* :func:`run_sanitize_smoke` — enable the runtime sanitizer and drive a
  full two-phase evaluation of every query kind over the example
  dataset, plus one round trip through each alternative engine. Exit
  code 1 on the first :class:`SanitizerViolation`.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from typing import List, Optional, Sequence

DEFAULT_PATHS = ("src/repro",)


def run_static(
    paths: Optional[Sequence[str]] = None,
    rules: Optional[Sequence[str]] = None,
    with_ruff: bool = False,
    with_mypy: bool = False,
) -> int:
    """Lint ``paths`` (default ``src/repro``); 0 = clean, 1 = violations."""
    from repro.checks.lint import ALL_RULES, render_report, rule_by_id, run_lint

    selected = (
        ALL_RULES if not rules else [rule_by_id(r) for r in rules]
    )
    violations = run_lint(paths or DEFAULT_PATHS, rules=selected)
    print(render_report(violations))
    rc = 1 if violations else 0
    for tool, wanted, argv in (
        ("ruff", with_ruff, ["ruff", "check", *(paths or DEFAULT_PATHS)]),
        ("mypy", with_mypy, ["mypy"]),
    ):
        if not wanted:
            continue
        if shutil.which(tool) is None:
            print(f"{tool}: not installed, skipping (CI runs it)")
            continue
        proc = subprocess.run(argv)
        rc = rc or proc.returncode
    return rc


def run_sanitize_smoke(sources: Sequence[int] = (0,)) -> int:
    """Sanitized end-to-end run over the example dataset; 0 = no violations.

    Covers every query kind through ``two_phase`` (Theorem 1 triangle
    certificates on for the weighted MIN/MAX kinds) and each alternative
    engine once, so every probe site executes at least once.
    """
    import numpy as np

    from repro.checks.sanitize import SanitizerViolation, enabled
    from repro.core.identify import build_core_graph
    from repro.core.twophase import two_phase
    from repro.core.unweighted import build_unweighted_core_graph
    from repro.datasets.example import example_graph
    from repro.engines.async_engine import async_evaluate
    from repro.engines.batch import evaluate_batch
    from repro.engines.delta_stepping import delta_stepping
    from repro.engines.frontier import evaluate_query
    from repro.engines.pull import direction_optimizing_evaluate
    from repro.engines.scalar import scalar_evaluate
    from repro.queries.registry import ALL_SPECS

    g = example_graph()
    checks = 0
    try:
        with enabled():
            for spec in ALL_SPECS:
                if spec.identification == "algorithm2":
                    cg = build_unweighted_core_graph(g, num_hubs=2, spec=spec)
                else:
                    cg = build_core_graph(g, spec, num_hubs=2)
                triangle = (
                    spec.uses_weights and not spec.multi_source
                )
                for source in sources:
                    src = None if spec.multi_source else int(source)
                    result = two_phase(
                        g, cg, spec, source=src, triangle=triangle
                    )
                    baseline = evaluate_query(g, spec, source=src)
                    if not np.allclose(
                        result.values, baseline, equal_nan=True
                    ):
                        print(f"check: {spec.name} two_phase result "
                              "diverges from direct evaluation")
                        return 1
                    checks += 1
            for source in sources:
                src = int(source)
                async_evaluate(g, ALL_SPECS[0], source=src, chunk_size=2)
                scalar_evaluate(g, ALL_SPECS[0], source=src)
                direction_optimizing_evaluate(g, ALL_SPECS[0], source=src)
                evaluate_batch(g, ALL_SPECS[0], [src])
                delta_stepping(g, ALL_SPECS[0], source=src)
                checks += 5
    except SanitizerViolation as exc:
        print(f"check: sanitizer violation: {exc}")
        return 1
    print(f"check: sanitized smoke clean ({checks} sanitized runs)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point mirroring ``repro-coregraph check``."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro-checks")
    parser.add_argument("--static", action="store_true",
                        help="run the RC static-analysis rules")
    parser.add_argument("--sanitize-run", action="store_true",
                        help="run the sanitized end-to-end smoke")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories to lint (default src/repro)")
    parser.add_argument("--rule", action="append", dest="rules",
                        help="restrict to specific rule ids (repeatable)")
    parser.add_argument("--ruff", action="store_true",
                        help="also run ruff when installed")
    parser.add_argument("--mypy", action="store_true",
                        help="also run mypy when installed")
    args = parser.parse_args(argv)
    if not args.static and not args.sanitize_run:
        args.static = True
    rc = 0
    if args.static:
        rc = run_static(args.paths or None, rules=args.rules,
                        with_ruff=args.ruff, with_mypy=args.mypy)
    if args.sanitize_run:
        rc = run_sanitize_smoke() or rc
    return rc


if __name__ == "__main__":
    sys.exit(main())
