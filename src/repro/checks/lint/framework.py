"""Visitor framework for the RC lint rules.

A :class:`Rule` declares which modules it applies to and yields
:class:`Violation` objects from a parsed file. The driver parses each file
once into a :class:`FileContext` (AST, source lines, suppression map) and
runs every applicable rule over it.

Suppression mirrors flake8's, namespaced to this tool so the two never
collide:

* ``# repro: noqa RC001`` on a line suppresses RC001 violations reported
  for that line (several ids may be comma-separated);
* ``# repro: noqa`` on a line suppresses every rule for that line;
* ``# repro: noqa-file RC002`` anywhere in a file suppresses RC002 for
  the whole file (reserve this for files that implement the convention a
  rule enforces, e.g. the journal's own stream-then-rename protocol).

Module names are inferred from the path: the segment after a ``src``
component (or the scan root) onward, ``/`` -> ``.``. Rules scope
themselves by module prefix (``repro.engines.``), so fixture trees that
mirror the package layout are linted under the same scoping as the real
tree.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Union

PathLike = Union[str, Path]

_NOQA_LINE = re.compile(
    r"#\s*repro:\s*noqa(?!-file)(?:\s+(?P<ids>RC\d{3}(?:\s*,\s*RC\d{3})*))?"
)
_NOQA_FILE = re.compile(
    r"#\s*repro:\s*noqa-file\s+(?P<ids>RC\d{3}(?:\s*,\s*RC\d{3})*)"
)

#: Sentinel stored in the suppression map meaning "every rule".
ALL_RULES_SENTINEL = "*"


@dataclass(frozen=True)
class Violation:
    """One rule finding, anchored to a file and line."""

    rule: str
    path: Path
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass
class FileContext:
    """Everything a rule needs about one parsed file."""

    path: Path
    module: str
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)
    #: line -> suppressed rule ids (or the ALL sentinel) from ``noqa``.
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule ids suppressed for the entire file via ``noqa-file``.
    file_suppressions: Set[str] = field(default_factory=set)

    def suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_suppressions:
            return True
        ids = self.line_suppressions.get(line)
        if ids is None:
            return False
        return ALL_RULES_SENTINEL in ids or rule_id in ids


class Rule:
    """Base class: subclasses set ``id``/``title`` and implement check()."""

    id: str = "RC000"
    title: str = ""
    #: Module-name prefixes the rule applies to; empty means every module.
    scopes: Sequence[str] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        if not self.scopes:
            return True
        return any(
            ctx.module == s.rstrip(".") or ctx.module.startswith(s)
            for s in self.scopes
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            message=message,
        )


def _parse_suppressions(source: str) -> "tuple[Dict[int, Set[str]], Set[str]]":
    line_sup: Dict[int, Set[str]] = {}
    file_sup: Set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "repro:" not in line:
            continue
        m = _NOQA_FILE.search(line)
        if m:
            file_sup.update(x.strip() for x in m.group("ids").split(","))
            continue
        m = _NOQA_LINE.search(line)
        if m:
            ids = m.group("ids")
            entry = line_sup.setdefault(lineno, set())
            if ids is None:
                entry.add(ALL_RULES_SENTINEL)
            else:
                entry.update(x.strip() for x in ids.split(","))
    return line_sup, file_sup


def infer_module(path: Path, root: Optional[Path] = None) -> str:
    """Dotted module name for ``path``, anchored at ``src`` or ``root``."""
    parts = list(path.with_suffix("").parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    elif root is not None:
        try:
            parts = list(path.relative_to(root).with_suffix("").parts)
        except ValueError:
            pass
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def make_context(path: PathLike, root: Optional[PathLike] = None) -> FileContext:
    path = Path(path)
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    line_sup, file_sup = _parse_suppressions(source)
    return FileContext(
        path=path,
        module=infer_module(path, None if root is None else Path(root)),
        tree=tree,
        source=source,
        lines=source.splitlines(),
        line_suppressions=line_sup,
        file_suppressions=file_sup,
    )


def lint_file(
    path: PathLike,
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[PathLike] = None,
) -> List[Violation]:
    """Run ``rules`` (default: the full RC catalog) over one file."""
    if rules is None:
        from repro.checks.lint.rules import ALL_RULES

        rules = ALL_RULES
    ctx = make_context(path, root=root)
    out: List[Violation] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for violation in rule.check(ctx):
            if not ctx.suppressed(violation.rule, violation.line):
                out.append(violation)
    out.sort(key=lambda v: (str(v.path), v.line, v.rule))
    return out


def discover_files(paths: Iterable[PathLike]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: Set[Path] = set()
    for p in paths:
        p = Path(p)
        if p.is_dir():
            found.update(p.rglob("*.py"))
        elif p.suffix == ".py":
            found.add(p)
    return sorted(found)


def run_lint(
    paths: Iterable[PathLike],
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[PathLike] = None,
) -> List[Violation]:
    """Lint every ``.py`` under ``paths``; returns sorted violations."""
    out: List[Violation] = []
    for path in discover_files(paths):
        out.extend(lint_file(path, rules=rules, root=root))
    return out


def render_report(violations: Sequence[Violation]) -> str:
    """Human-readable report: one line per violation plus a summary."""
    if not violations:
        return "static analysis: clean"
    lines = [v.render() for v in violations]
    by_rule: Dict[str, int] = {}
    for v in violations:
        by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
    summary = ", ".join(f"{rid}×{n}" for rid, n in sorted(by_rule.items()))
    lines.append(f"{len(violations)} violation(s): {summary}")
    return "\n".join(lines)
