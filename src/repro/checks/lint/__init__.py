"""The AST lint engine: pluggable rules encoding repo conventions as code.

Usage::

    from repro.checks.lint import run_lint
    violations = run_lint(["src/repro"])
    for v in violations:
        print(v.render())

Rules live in :mod:`repro.checks.lint.rules` (RC001–RC010); the visitor
framework, file discovery, and ``# repro: noqa RCxxx`` suppression live in
:mod:`repro.checks.lint.framework`. The catalog each rule enforces is
documented in ``docs/static-analysis.md``.
"""

from repro.checks.lint.framework import (  # noqa: F401
    FileContext,
    Rule,
    Violation,
    discover_files,
    lint_file,
    render_report,
    run_lint,
)
from repro.checks.lint.rules import ALL_RULES, rule_by_id  # noqa: F401
