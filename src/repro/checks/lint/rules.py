"""The RC rule catalog: repo conventions and paper invariants as lint rules.

Each rule documents its rationale inline; the user-facing catalog (with
suppression guidance) is ``docs/static-analysis.md``. Rules are scoped by
module prefix so fixture trees mirroring the package layout (see
``tests/checks/fixtures/``) are linted exactly like the shipped tree.

Rule index
----------
RC001  engine iteration loops must poll their Budget
RC002  persistence writes must go through repro.resilience.atomic
RC003  no ==/!= on float value arrays in engines
RC004  no bare/overbroad except that swallows exceptions
RC005  metric/span/event names must be registered in repro.obs.namespaces
RC006  no unseeded RNG or wall-clock-in-loop in engine/core kernels
RC007  no mutable default arguments
RC008  QuerySpec connectivity_pick must be consistent with its Selection
RC009  never catch RuntimeError (it swallows BudgetExceeded)
RC010  engine loops must expose a fault_point site
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.checks.lint.framework import FileContext, Rule, Violation
from repro.obs import namespaces

# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _root_name(node: ast.AST) -> Optional[str]:
    """The base identifier of a Name/Attribute/Subscript/Call chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        node = node.func if isinstance(node, ast.Call) else node.value
    return node.id if isinstance(node, ast.Name) else None


def _str_const(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def _is_write_mode(mode: str) -> bool:
    return any(c in mode for c in "wax") or "+" in mode


def _call_named(call: ast.Call, *names: str) -> bool:
    """Whether the call target is a bare name or attribute in ``names``."""
    if isinstance(call.func, ast.Name):
        return call.func.id in names
    if isinstance(call.func, ast.Attribute):
        return call.func.attr in names
    return False


# ---------------------------------------------------------------------------
# RC001 — engine iteration loops must poll their Budget
# ---------------------------------------------------------------------------


class RC001BudgetPoll(Rule):
    """An engine loop that never ticks a Budget can run away unbounded.

    The resilience contract (PR 3) is that every evaluator enforces
    deadline/iteration/frontier limits at iteration boundaries. A loop is
    recognized as an engine iteration loop when it gathers frontier edges
    (``ragged_gather``) or declares a fault site (``fault_point``); it must
    then contain a ``budget.tick(...)`` (or ``check_deadline``) call.
    """

    id = "RC001"
    title = "engine iteration loop must poll its Budget"
    scopes = ("repro.engines.",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While):
                continue
            is_engine_loop = any(
                _call_named(c, "ragged_gather", "fault_point")
                for c in _calls(node)
            )
            if not is_engine_loop:
                continue
            ticks = any(
                _call_named(c, "tick", "check_deadline") for c in _calls(node)
            )
            if not ticks:
                yield self.violation(
                    ctx, node,
                    "engine iteration loop never polls a Budget "
                    "(budget.tick(...) at the round boundary)",
                )


# ---------------------------------------------------------------------------
# RC002 — persistence writes must go through repro.resilience.atomic
# ---------------------------------------------------------------------------

_WRITE_ATTRS = ("save", "savez", "savez_compressed")


class RC002AtomicWrites(Rule):
    """Raw writes in persistence layers can leave torn files after a crash.

    Results, journals, baselines, and checkpoints funnel through
    ``atomic_path``/``atomic_open`` (temp file + ``os.replace``), so a
    reader never observes a truncated artifact. Within the persistence
    modules this rule flags write-mode ``open``, ``Path.write_text/bytes``,
    and ``np.save*`` calls whose target is not a name bound by an atomic
    context manager.
    """

    id = "RC002"
    title = "persistence writes must use resilience.atomic"
    scopes = (
        "repro.obs.",
        "repro.io.",
        "repro.resilience.",
        "repro.harness.",
        "repro.analysis.traces",
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.module == "repro.resilience.atomic":
            return False  # the implementation itself
        return super().applies_to(ctx)

    @staticmethod
    def _atomic_bound_names(tree: ast.AST) -> set:
        names = set()
        for node in ast.walk(tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                call = item.context_expr
                if not isinstance(call, ast.Call):
                    continue
                target = _dotted(call.func) or ""
                if target.split(".")[-1] in ("atomic_path", "atomic_open"):
                    if isinstance(item.optional_vars, ast.Name):
                        names.add(item.optional_vars.id)
        return names

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        atomic_names = self._atomic_bound_names(ctx.tree)

        def exempt(target: Optional[ast.AST]) -> bool:
            return target is not None and _root_name(target) in atomic_names

        for call in _calls(ctx.tree):
            func = call.func
            # open(path, "w") builtin
            if isinstance(func, ast.Name) and func.id == "open":
                mode = self._mode_of(call, arg_index=1)
                if mode is not None and _is_write_mode(mode):
                    if not exempt(call.args[0] if call.args else None):
                        yield self.violation(
                            ctx, call,
                            "write-mode open() outside resilience.atomic",
                        )
            elif isinstance(func, ast.Attribute):
                if func.attr == "open":
                    mode = self._mode_of(call, arg_index=0)
                    if mode is not None and _is_write_mode(mode):
                        if not exempt(func.value):
                            yield self.violation(
                                ctx, call,
                                "write-mode .open() outside "
                                "resilience.atomic",
                            )
                elif func.attr in ("write_text", "write_bytes"):
                    if not exempt(func.value):
                        yield self.violation(
                            ctx, call,
                            f".{func.attr}() outside resilience.atomic "
                            "(use atomic_write_text/bytes)",
                        )
                elif func.attr in _WRITE_ATTRS and (
                    _root_name(func.value) in ("np", "numpy")
                ):
                    if not exempt(call.args[0] if call.args else None):
                        yield self.violation(
                            ctx, call,
                            f"np.{func.attr}() outside resilience.atomic "
                            "(wrap in atomic_path)",
                        )

    @staticmethod
    def _mode_of(call: ast.Call, arg_index: int) -> Optional[str]:
        if len(call.args) > arg_index:
            return _str_const(call.args[arg_index])
        for kw in call.keywords:
            if kw.arg == "mode":
                return _str_const(kw.value)
        return None


# ---------------------------------------------------------------------------
# RC003 — no ==/!= on float value arrays in engines
# ---------------------------------------------------------------------------

#: Identifiers conventionally holding per-vertex float value arrays.
_VALUE_NAMES = frozenset({
    "vals", "values", "dist", "cand", "old", "old_v", "new_vals",
    "val_u", "val_v", "cg_vals",
})


class RC003FloatValueEquality(Rule):
    """``==``/``!=`` on float value arrays breaks under accumulated error.

    Engines must compare values with the query's selection comparator
    (``spec.better``/``spec.values_equal``), which carries the per-query
    tolerances (Viterbi's multiplicative chains need ``rtol=1e-6``).
    """

    id = "RC003"
    title = "float value arrays compared with ==/!="
    scopes = ("repro.engines.",)

    @staticmethod
    def _value_root(node: ast.AST) -> Optional[str]:
        """Root name of a value-array operand.

        Only bare names and subscript chains (``vals``, ``vals[v]``) count;
        attribute access (``vals.shape``, ``vals.dtype``) compares metadata,
        not float values.
        """
        while isinstance(node, ast.Subscript):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            for operand in operands:
                root = self._value_root(operand)
                if root in _VALUE_NAMES:
                    yield self.violation(
                        ctx, node,
                        f"exact ==/!= on value array {root!r}; use the "
                        "query's selection comparator "
                        "(spec.better / spec.values_equal)",
                    )
                    break


# ---------------------------------------------------------------------------
# RC004 — no bare/overbroad except that swallows exceptions
# ---------------------------------------------------------------------------


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(n, ast.Raise) and n.exc is None for n in ast.walk(handler)
    )


def _exception_names(handler: ast.ExceptHandler) -> List[str]:
    if handler.type is None:
        return []
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names = []
    for t in types:
        dotted = _dotted(t)
        if dotted is not None:
            names.append(dotted.split(".")[-1])
    return names


class RC004OverbroadExcept(Rule):
    """Bare/overbroad handlers swallow BudgetExceeded and injected faults.

    ``except:`` and ``except Exception`` (or ``BaseException``) absorb the
    structured control-flow exceptions the resilience layer depends on —
    a budget abort caught by a cleanup handler silently becomes a hang.
    A handler that re-raises (bare ``raise``) is fine: it observes, it
    does not swallow.
    """

    id = "RC004"
    title = "bare or overbroad exception handler"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                if not _handler_reraises(node):
                    yield self.violation(
                        ctx, node, "bare except: swallows every exception "
                        "(including BudgetExceeded and injected faults)",
                    )
                continue
            broad = {"Exception", "BaseException"} & set(
                _exception_names(node)
            )
            if broad and not _handler_reraises(node):
                yield self.violation(
                    ctx, node,
                    f"except {sorted(broad)[0]} without re-raise swallows "
                    "BudgetExceeded/injected faults; catch the specific "
                    "exception instead",
                )


# ---------------------------------------------------------------------------
# RC005 — telemetry names must be registered in repro.obs.namespaces
# ---------------------------------------------------------------------------


class RC005RegisteredNames(Rule):
    """A typo'd metric/span/event name silently forks a time series.

    Baselines in ``repro-obs-baseline/v1`` key on exact names; an
    unregistered name would pass every test and quietly stop feeding the
    regression gate. Every string-literal name handed to
    ``counter/gauge/histogram``, ``span``, or an ``emit({"type": "event",
    "name": ...})`` journal line must appear in
    :mod:`repro.obs.namespaces`.
    """

    id = "RC005"
    title = "unregistered metric/span/event name"
    scopes = ("repro.",)

    def applies_to(self, ctx: FileContext) -> bool:
        # The catalog itself and the registry internals are exempt.
        return super().applies_to(ctx) and ctx.module not in (
            "repro.obs.namespaces", "repro.obs.metrics",
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for call in _calls(ctx.tree):
            if _call_named(call, "counter", "gauge", "histogram",
                           "stream_hist"):
                # Only metric-registry receivers; `time.perf_counter()`
                # has no string first argument so it falls through.
                name = _str_const(call.args[0]) if call.args else None
                if name is not None and not namespaces.known_metric(name):
                    yield self.violation(
                        ctx, call,
                        f"metric name {name!r} is not registered in "
                        "repro.obs.namespaces.METRIC_NAMES",
                    )
            elif _call_named(call, "span"):
                name = _str_const(call.args[0]) if call.args else None
                if name is not None and not namespaces.known_span(name):
                    yield self.violation(
                        ctx, call,
                        f"span name {name!r} is not registered in "
                        "repro.obs.namespaces.SPAN_NAMES",
                    )
            elif _call_named(call, "emit") and call.args:
                kind, event = self._journal_name(call.args[0])
                if kind == "event" and event is not None \
                        and not namespaces.known_event(event):
                    yield self.violation(
                        ctx, call,
                        f"journal event name {event!r} is not registered "
                        "in repro.obs.namespaces.EVENT_NAMES",
                    )
                elif kind == "span" and event is not None \
                        and not namespaces.known_span(event):
                    # Synthetic span events (journaled directly, not via
                    # `with span(...)`) use the same span vocabulary.
                    yield self.violation(
                        ctx, call,
                        f"synthetic span name {event!r} is not registered "
                        "in repro.obs.namespaces.SPAN_NAMES",
                    )
        # Exporter row literals — ("counter", "serve.submitted", ...) —
        # bypass the registry call sites above but land in the scraped
        # vocabulary all the same, so their names face the same gate.
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Tuple) or len(node.elts) < 2:
                continue
            kind = _str_const(node.elts[0])
            if kind not in ("counter", "gauge", "histogram", "stream_hist"):
                continue
            name = _str_const(node.elts[1])
            # Dotted names only: a dotless second element is some other
            # tuple (argument lists, table headers) that merely starts
            # with a kind-like word.
            if name is None or "." not in name:
                continue
            if not namespaces.known_metric(name):
                yield self.violation(
                    ctx, node,
                    f"exporter row metric name {name!r} is not registered "
                    "in repro.obs.namespaces.METRIC_NAMES",
                )

    @staticmethod
    def _journal_name(node: ast.AST) -> "Tuple[Optional[str], Optional[str]]":
        if not isinstance(node, ast.Dict):
            return None, None
        entries: Dict[str, Optional[str]] = {}
        for key, value in zip(node.keys, node.values):
            k = _str_const(key) if key is not None else None
            if k in ("type", "name"):
                entries[k] = _str_const(value)
        if entries.get("type") not in ("event", "span"):
            return None, None
        return entries.get("type"), entries.get("name")


# ---------------------------------------------------------------------------
# RC006 — determinism: no unseeded RNG / wall-clock-in-loop in kernels
# ---------------------------------------------------------------------------

_CLOCK_CALLS = frozenset({
    "time.time", "time.perf_counter", "time.monotonic",
    "time.process_time", "datetime.now", "datetime.utcnow",
    "datetime.datetime.now", "datetime.datetime.utcnow",
})


class RC006KernelDeterminism(Rule):
    """Checkpoint/resume replays engine schedules; kernels must be pure.

    A resumed run must be bit-identical to an uninterrupted one (the PR 3
    guarantee), which unseeded randomness or per-iteration wall-clock
    reads inside the kernel loop break. Seeded generators
    (``default_rng(seed)``) are allowed; timing *around* a loop (stats
    wall time) is allowed; the Budget's internal clock lives in
    ``repro.resilience`` and is exempt by scope.
    """

    id = "RC006"
    title = "nondeterminism in engine/core kernel"
    scopes = ("repro.engines.", "repro.core.")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for call in _calls(ctx.tree):
            dotted = _dotted(call.func) or ""
            if dotted.startswith(("np.random.", "numpy.random.")):
                tail = dotted.split(".")[-1]
                if tail == "default_rng" and (call.args or call.keywords):
                    continue  # seeded: deterministic by construction
                yield self.violation(
                    ctx, call,
                    f"{dotted}() in a kernel module; use a seeded "
                    "default_rng(seed) threaded from the caller",
                )
            elif dotted.startswith("random.") or dotted == "default_rng":
                if dotted == "default_rng" and (call.args or call.keywords):
                    continue
                yield self.violation(
                    ctx, call,
                    f"{dotted}() in a kernel module is unseeded "
                    "nondeterminism",
                )
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.While, ast.For)):
                continue
            for call in _calls(loop):
                dotted = _dotted(call.func) or ""
                if dotted in _CLOCK_CALLS:
                    yield self.violation(
                        ctx, call,
                        f"{dotted}() inside an iteration loop: wall-clock "
                        "reads in the kernel break checkpoint/resume "
                        "determinism (time around the loop instead)",
                    )


# ---------------------------------------------------------------------------
# RC007 — no mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_CTORS = frozenset({"list", "dict", "set", "bytearray"})


class RC007MutableDefaults(Rule):
    """A mutable default is shared across calls — state leaks between runs."""

    id = "RC007"
    title = "mutable default argument"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                mutable = isinstance(
                    default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)
                ) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_CTORS
                )
                if mutable:
                    yield self.violation(
                        ctx, default,
                        f"mutable default argument in {node.name}(); "
                        "default to None and create inside the body",
                    )


# ---------------------------------------------------------------------------
# RC008 — QuerySpec connectivity_pick consistency
# ---------------------------------------------------------------------------


class RC008ConnectivityPick(Rule):
    """Algorithm 1's connectivity pass must pick edges the query can use.

    The added out-edge for an otherwise-disconnected vertex must be the
    one the selection direction prefers: MIN-select weighted queries keep
    the lightest edge, plain MAX-select (SSWP) the heaviest, unweighted
    queries any edge. A MAX-select spec with a ``weight_transform`` is
    exempt from the direction check — Viterbi legitimately picks the
    *minimum* raw weight because its transform maps ``w >= 1`` to ``1/w``
    (small weight = high transition probability). Every spec must declare
    its pick explicitly so the choice is reviewed, not defaulted.
    """

    id = "RC008"
    title = "QuerySpec connectivity_pick inconsistent with Selection"
    scopes = ("repro.",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for call in _calls(ctx.tree):
            if not (
                isinstance(call.func, ast.Name)
                and call.func.id == "QuerySpec"
            ):
                continue
            kwargs = {kw.arg: kw.value for kw in call.keywords if kw.arg}
            pick = _str_const(kwargs.get("connectivity_pick", ast.Pass()))
            selection = _dotted(kwargs.get("selection", ast.Pass())) or ""
            uses_weights = kwargs.get("uses_weights")
            unweighted = (
                isinstance(uses_weights, ast.Constant)
                and uses_weights.value is False
            )
            has_transform = "weight_transform" in kwargs
            if "connectivity_pick" not in kwargs:
                yield self.violation(
                    ctx, call,
                    "QuerySpec must declare connectivity_pick explicitly "
                    "(the Algorithm 1 connectivity pass depends on it)",
                )
                continue
            if unweighted:
                if pick != "any":
                    yield self.violation(
                        ctx, call,
                        f"unweighted QuerySpec must use "
                        f"connectivity_pick='any', not {pick!r}",
                    )
            elif selection.endswith("Selection.MIN") and pick != "min":
                yield self.violation(
                    ctx, call,
                    f"MIN-selection weighted QuerySpec must use "
                    f"connectivity_pick='min', not {pick!r}",
                )
            elif (
                selection.endswith("Selection.MAX")
                and not has_transform
                and pick != "max"
            ):
                yield self.violation(
                    ctx, call,
                    f"MAX-selection weighted QuerySpec without a "
                    f"weight_transform must use connectivity_pick='max', "
                    f"not {pick!r}",
                )


# ---------------------------------------------------------------------------
# RC009 — never catch RuntimeError (it swallows BudgetExceeded)
# ---------------------------------------------------------------------------


class RC009RuntimeErrorCatch(Rule):
    """``BudgetExceeded`` subclasses RuntimeError; catching the base hides it.

    Code that wants to survive a budget abort must catch
    ``BudgetExceeded`` by name (and decide about ``anytime`` semantics);
    code that wants cleanup must re-raise.
    """

    id = "RC009"
    title = "except RuntimeError swallows BudgetExceeded"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if "RuntimeError" in _exception_names(node):
                if not _handler_reraises(node):
                    yield self.violation(
                        ctx, node,
                        "except RuntimeError also catches BudgetExceeded "
                        "(and InjectedFault); catch the specific type",
                    )


# ---------------------------------------------------------------------------
# RC010 — engine loops must expose a fault_point site
# ---------------------------------------------------------------------------


class RC010FaultSite(Rule):
    """Engines (and serve workers) without fault sites cannot be crash-tested.

    The failure-mode suite and CI's crash/resume smoke kill engines at
    named ``fault_point`` sites; an evaluator without one is untestable
    under injected faults and silently escapes that coverage. The same
    holds for ``repro.serve`` worker loops (the chaos-service CI step can
    only prove worker supervision if every loop that pops and executes
    requests declares a kill site), for the ``repro.obs.live``
    background threads — the sampling profiler and scrape exporter run
    unattended for the whole process lifetime, so their loops must be
    killable in chaos tests too — and for the ``repro.evolve``
    rebuild supervisor, whose crash-restart loop is exactly the thing
    the mutation-storm chaos job kills.
    """

    id = "RC010"
    title = "engine function has no fault_point site"
    scopes = (
        "repro.engines.", "repro.serve.", "repro.obs.live.",
        "repro.evolve.",
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            # An engine loop gathers edges or ticks a budget; a serve
            # worker loop pops requests or runs two_phase directly; an
            # obs.live background loop samples stacks or serves scrapes;
            # the evolve supervisor's tick loop attempts rebuilds.
            has_engine_loop = any(
                isinstance(inner, ast.While)
                and any(
                    _call_named(c, "ragged_gather", "tick", "pop",
                                "two_phase", "_sample_once",
                                "handle_request", "_attempt")
                    for c in _calls(inner)
                )
                for inner in ast.walk(node)
            )
            if not has_engine_loop:
                continue
            if not any(_call_named(c, "fault_point") for c in _calls(node)):
                yield self.violation(
                    ctx, node,
                    f"{node.name}() drives an engine or worker loop but "
                    "declares no fault_point site; crash/kill tests cannot "
                    "reach it",
                )


#: The shipped rule set, in id order.
ALL_RULES: Sequence[Rule] = (
    RC001BudgetPoll(),
    RC002AtomicWrites(),
    RC003FloatValueEquality(),
    RC004OverbroadExcept(),
    RC005RegisteredNames(),
    RC006KernelDeterminism(),
    RC007MutableDefaults(),
    RC008ConnectivityPick(),
    RC009RuntimeErrorCatch(),
    RC010FaultSite(),
)


def rule_by_id(rule_id: str) -> Rule:
    for rule in ALL_RULES:
        if rule.id == rule_id:
            return rule
    raise KeyError(f"unknown rule {rule_id!r}")
