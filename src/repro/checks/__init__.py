"""Correctness tooling: static analysis and a runtime invariant sanitizer.

The reproduction's correctness hangs on a handful of paper invariants —
monotone ``⊕`` propagation under MIN/MAX selection (§2.1, Table 6), the
``FirstPhase2Visit`` guarantee of Algorithm 3, Theorem 1's certification
bound — plus repo conventions (budget polling, atomic persistence,
registered telemetry names) that nothing used to enforce mechanically.
This package enforces both, with two heads:

* :mod:`repro.checks.lint` — an AST lint engine with repo-specific rules
  (RC001–RC010) encoding the conventions as code. Run it via
  ``repro-coregraph check --static`` or :func:`repro.checks.cli.run_static`.
* :mod:`repro.checks.sanitize` — dev-mode runtime probes, enabled by
  ``REPRO_SANITIZE=1`` (or :func:`repro.checks.sanitize.enable`), compiled
  down to one module-attribute read when off. Probes validate CSR
  structure, frontier hygiene, update monotonicity, core-graph
  containment, Theorem 1 certificates, and async-engine update visibility.

The engines import only :mod:`repro.checks.sanitize`; the lint machinery
loads on demand (CLI / tests), keeping the hot-path import graph flat.
"""
