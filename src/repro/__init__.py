"""Reproduction of *Core Graph: Exploiting Edge Centrality to Speedup the
Evaluation of Iterative Graph Queries* (EuroSys 2024).

The package is organized as a small stack of subsystems:

``repro.graph``
    CSR graph substrate: construction, transforms, weights, I/O.
``repro.generators``
    Synthetic graph generators (R-MAT, Erdős–Rényi).
``repro.datasets``
    The paper's worked example and scaled-down stand-ins for its inputs.
``repro.queries``
    The monotonic vertex-query framework (Table 6 of the paper) with the six
    query kinds: SSSP, SSWP, SSNP, Viterbi, REACH, WCC.
``repro.engines``
    Iterative frontier-push evaluation engines with run statistics.
``repro.core``
    The paper's contribution: Core Graph identification (Algorithms 1 and 2),
    two-phase evaluation (Algorithm 3), and the triangle-inequality
    optimization (Theorem 1).
``repro.systems``
    Cost-model simulators of the three host systems the paper accelerates:
    Subway (GPU), GridGraph (out-of-core), and Ligra (in-memory).
``repro.baselines``
    Abstraction Graph and Sampled Graph proxy-graph baselines.
``repro.analysis`` / ``repro.harness``
    Experiment drivers that regenerate every table and figure.

Quickstart::

    from repro import Graph, build_core_graph, two_phase, SSSP

    g = ...  # a repro.Graph
    cg = build_core_graph(g, SSSP, num_hubs=20)
    result = two_phase(g, cg, SSSP, source=0)
"""

from repro.graph import Graph, GraphBuilder
from repro.queries import SSSP, SSWP, SSNP, VITERBI, REACH, WCC, QuerySpec
from repro.engines import evaluate_query, RunStats
from repro.core import (
    CoreGraph,
    build_core_graph,
    build_unweighted_core_graph,
    two_phase,
    TwoPhaseResult,
)

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphBuilder",
    "QuerySpec",
    "SSSP",
    "SSWP",
    "SSNP",
    "VITERBI",
    "REACH",
    "WCC",
    "evaluate_query",
    "RunStats",
    "CoreGraph",
    "build_core_graph",
    "build_unweighted_core_graph",
    "two_phase",
    "TwoPhaseResult",
    "__version__",
]
