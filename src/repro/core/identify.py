"""Core Graph identification for weighted queries (Algorithm 1).

For each of the highest-degree vertices ``h`` the builder evaluates a forward
query ``Q(h)`` on ``G`` and a backward query on ``G^T``, then marks every
edge witnessed to lie on a solution path: ``u`` reached and
``Val(u) ⊕ w(u, v) == Val(v)``. Such edges have non-zero betweenness
centrality (§2.1). A final pass adds one out-edge for every vertex that
would otherwise have none (:mod:`repro.core.connectivity`).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.checks.sanitize import probes as san_probes
from repro.checks.sanitize import runtime as san_runtime
from repro.core.connectivity import add_connectivity_edges
from repro.core.coregraph import CoreGraph, HubData
from repro.engines.frontier import evaluate_query
from repro.graph.csr import Graph
from repro.graph.degree import top_degree_vertices
from repro.graph.transform import edge_subgraph, reverse_edge_permutation
from repro.obs import journal as obs_journal
from repro.obs import quality as obs_quality
from repro.obs import runtime as obs_runtime
from repro.obs.spans import span
from repro.queries.base import QuerySpec

#: The paper fixes the number of hub queries at 20 after observing that
#: additional queries contribute very few new edges (Fig. 3).
DEFAULT_NUM_HUBS = 20


def solution_edge_mask(
    g: Graph,
    spec: QuerySpec,
    vals: np.ndarray,
    weights: Optional[np.ndarray] = None,
    edge_sources: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Mask of ``g``'s edges on some solution path of the converged ``vals``.

    ``weights`` must already be transformed by ``spec.weight_transform``
    when provided; ``edge_sources`` may be passed to amortize the CSR row
    expansion across calls.
    """
    if weights is None:
        weights = spec.weight_transform(g.edge_weights())
    if edge_sources is None:
        edge_sources = g.edge_sources()
    return spec.on_solution_path(vals[edge_sources], weights, vals[g.dst])


def build_core_graph(
    g: Graph,
    spec: QuerySpec,
    num_hubs: int = DEFAULT_NUM_HUBS,
    hubs: Optional[Sequence[int]] = None,
    connectivity: bool = True,
    keep_hub_values: bool = True,
    track_growth: bool = False,
    track_selection: bool = False,
    include_backward: bool = True,
    budget=None,
    progress=None,
) -> CoreGraph:
    """Algorithm 1: find the core graph of ``g`` for query kind ``spec``.

    Parameters
    ----------
    num_hubs:
        How many highest-degree vertices to query (paper default: 20).
    hubs:
        Explicit hub vertices, overriding degree-based selection.
    connectivity:
        Run the additional-connectivity pass (Algorithm 1 lines 8–12).
    keep_hub_values:
        Retain per-hub full-graph query values for Theorem 1 certificates.
    track_growth:
        Record the cumulative centrality-edge count after each hub (Fig. 3).
    track_selection:
        Record, per edge, how many forward queries selected it (Table 1).
    include_backward:
        Also run the backward (transpose-graph) query per hub, as
        Algorithm 1 does. Disabling it is the ablation of the paper's
        "forward and backward queries ... preserve pairwise reachability"
        argument; note the Theorem 1 certificates need backward values.
    budget:
        Optional :class:`repro.resilience.Budget`; its deadline is checked
        before each hub query so a bounded rebuild aborts between hubs
        (raising :class:`repro.resilience.BudgetExceeded`) instead of
        mid-traversal.
    progress:
        Optional ``progress(done, total)`` callback invoked after each hub
        query — the hook supervised rebuilders use to checkpoint.
    """
    if spec.multi_source:
        raise ValueError(
            f"{spec.name} has no per-source query; build the general core "
            "graph with build_unweighted_core_graph instead"
        )
    if hubs is None:
        hub_arr = top_degree_vertices(g, num_hubs)
    else:
        hub_arr = np.asarray(list(hubs), dtype=np.int64)
    grev = g.reverse()
    perm = reverse_edge_permutation(g)

    fw_weights = spec.weight_transform(g.edge_weights())
    bw_weights = spec.weight_transform(grev.edge_weights())
    fw_sources = g.edge_sources()
    bw_sources = grev.edge_sources()

    mask = np.zeros(g.num_edges, dtype=bool)
    growth = [] if track_growth else None
    selection = np.zeros(g.num_edges, dtype=np.int32) if track_selection else None
    hub_data = []

    build_span = span("cg.build", algorithm="weighted", query=spec.name,
                      num_hubs=len(hub_arr))
    with build_span:
        for i, h in enumerate(hub_arr):
            h = int(h)
            if budget is not None:
                budget.check_deadline("cg.build")
            with span("cg.hub_query", hub=h, query=spec.name):
                fvals = evaluate_query(g, spec, h, weights=fw_weights)
                fmask = spec.on_solution_path(
                    fvals[fw_sources], fw_weights, fvals[g.dst]
                )
                mask |= fmask
                if selection is not None:
                    selection += fmask
                if include_backward:
                    bvals = evaluate_query(grev, spec, h, weights=bw_weights)
                    bmask = spec.on_solution_path(
                        bvals[bw_sources], bw_weights, bvals[grev.dst]
                    )
                    mask[perm[np.flatnonzero(bmask)]] = True
                else:
                    bvals = None
            if keep_hub_values and bvals is not None:
                hub_data.append(HubData(hub=h, forward=fvals, backward=bvals))
            if growth is not None:
                growth.append(int(mask.sum()))
            if progress is not None:
                progress(i + 1, len(hub_arr))

        connectivity_added = 0
        if connectivity:
            with span("cg.connectivity"):
                connectivity_added = add_connectivity_edges(g, mask, spec)

    if obs_runtime._enabled:
        core_edges = int(mask.sum())
        fraction = obs_quality.record_cg_build(
            algorithm="weighted",
            query=spec.name,
            core_edges=core_edges,
            source_edges=int(g.num_edges),
            connectivity_edges=connectivity_added,
        )
        obs_journal.emit(
            {
                "type": "event",
                "name": "cg.built",
                "algorithm": "weighted",
                "query": spec.name,
                "num_hubs": len(hub_arr),
                "core_edges": core_edges,
                "source_edges": int(g.num_edges),
                "edge_fraction": fraction,
                "connectivity_edges": connectivity_added,
            }
        )

    cg = CoreGraph(
        graph=edge_subgraph(g, mask),
        edge_mask=mask,
        spec_name=spec.name,
        hubs=hub_arr,
        hub_data=hub_data,
        growth=None if growth is None else np.asarray(growth, dtype=np.int64),
        forward_selection_counts=selection,
        connectivity_edges=connectivity_added,
        source_num_edges=g.num_edges,
    )
    if san_runtime._enabled:
        san_probes.check_cg_containment(g, cg, "cg.build")
    return cg
