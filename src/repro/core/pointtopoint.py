"""Point-to-point queries: the related-work contrast of §4.

Core graphs target *point-to-all* queries; Query-by-Sketch and PnP (Xu et
al., ASPLOS '19) instead prune the graph per (source, destination) pair.
This module implements that competing regime so the repository can compare
the two directly:

* :func:`point_to_point` — best-first evaluation with early termination at
  the target (the baseline).
* :func:`pnp_prune` / :func:`pnp_point_to_point` — PnP-style pruning:
  bidirectional reachability from ``s`` (forward) and ``t`` (backward)
  restricts evaluation to vertices on some s→t path.
* :func:`bidirectional_sssp` — classic bidirectional Dijkstra for SSSP.

All produce the exact point-to-point value (differentially tested against
the full single-source solve).
"""

from __future__ import annotations

import heapq
from typing import Tuple

import numpy as np

from repro.engines.frontier import evaluate_query
from repro.graph.csr import Graph
from repro.queries.base import QuerySpec, Selection
from repro.queries.specs import REACH


def point_to_point(
    g: Graph, spec: QuerySpec, source: int, target: int
) -> float:
    """Best-first evaluation, terminating when ``target`` settles.

    Works for every label-setting query kind (all of Table 6 except WCC).
    """
    if spec.multi_source:
        raise ValueError("point-to-point requires a single-source query")
    weights = spec.weight_transform(g.edge_weights())
    vals = spec.initial_values(g.num_vertices, source)
    sign = 1.0 if spec.selection is Selection.MIN else -1.0
    done = np.zeros(g.num_vertices, dtype=bool)
    heap = [(sign * vals[source], source)]
    while heap:
        key, u = heapq.heappop(heap)
        if done[u]:
            continue
        if sign * key != vals[u]:
            continue
        done[u] = True
        if u == target:
            return float(vals[target])
        lo, hi = g.offsets[u], g.offsets[u + 1]
        for i in range(lo, hi):
            v = int(g.dst[i])
            cand = float(spec.propagate(vals[u], weights[i]))
            if spec.better(cand, vals[v]):
                vals[v] = cand
                heapq.heappush(heap, (sign * cand, v))
    return float(vals[target])


def pnp_prune(g: Graph, source: int, target: int) -> np.ndarray:
    """PnP's pruning step: vertices on some ``source -> target`` path.

    A vertex survives iff it is forward-reachable from ``source`` and
    backward-reachable from ``target``.
    """
    fwd = evaluate_query(g, REACH, source) == 1.0
    bwd = evaluate_query(g.reverse(), REACH, target) == 1.0
    return fwd & bwd


def pnp_point_to_point(
    g: Graph, spec: QuerySpec, source: int, target: int
) -> Tuple[float, int]:
    """Evaluate on the pruned subgraph; returns ``(value, pruned_edges)``.

    Every solution path from ``source`` to ``target`` lies within the
    pruned vertex set, so the value is exact. The second element reports
    how many edges the pruning removed (PnP's benefit metric).
    """
    keep_vertex = pnp_prune(g, source, target)
    if not keep_vertex[target]:
        # target unreachable: the query value is the init value
        return float(spec.init_value), g.num_edges
    from repro.graph.transform import vertex_induced_subgraph

    pruned = vertex_induced_subgraph(g, keep_vertex)
    vals = evaluate_query(pruned, spec, source)
    return float(vals[target]), int(g.num_edges - pruned.num_edges)


def bidirectional_sssp(g: Graph, source: int, target: int) -> float:
    """Bidirectional Dijkstra for the SSSP point-to-point distance."""
    if source == target:
        return 0.0
    rev = g.reverse()
    n = g.num_vertices
    dist = [np.full(n, np.inf), np.full(n, np.inf)]
    dist[0][source] = 0.0
    dist[1][target] = 0.0
    done = [np.zeros(n, dtype=bool), np.zeros(n, dtype=bool)]
    heaps = [[(0.0, source)], [(0.0, target)]]
    graphs = (g, rev)
    best = np.inf
    while heaps[0] or heaps[1]:
        side = 0 if (
            heaps[0] and (not heaps[1] or heaps[0][0][0] <= heaps[1][0][0])
        ) else 1
        d, u = heapq.heappop(heaps[side])
        if done[side][u] or d != dist[side][u]:
            continue
        done[side][u] = True
        # Stopping criterion: both settled radii together exceed the best.
        other_top = heaps[1 - side][0][0] if heaps[1 - side] else np.inf
        if d + other_top >= best and np.isfinite(best):
            break
        work = graphs[side]
        weights = work.edge_weights()
        lo, hi = work.offsets[u], work.offsets[u + 1]
        for i in range(lo, hi):
            v = int(work.dst[i])
            cand = d + float(weights[i])
            if cand < dist[side][v]:
                dist[side][v] = cand
                heapq.heappush(heaps[side], (cand, v))
            total = dist[0][v] + dist[1][v]
            if total < best:
                best = total
    return float(best)
