"""The paper's contribution: Core Graph identification and exploitation."""

from repro.core.coregraph import CoreGraph, HubData
from repro.core.identify import build_core_graph, solution_edge_mask
from repro.core.unweighted import build_unweighted_core_graph
from repro.core.connectivity import add_connectivity_edges
from repro.core.twophase import two_phase, TwoPhaseResult
from repro.core.triangle import certify_precise, supports_triangle
from repro.core.precision import measure_precision, PrecisionReport
from repro.core.dispatch import build_cg
from repro.core.index import CoreGraphIndex
from repro.core.advisor import CoreGraphAdvisor
from repro.core.evolving import EvolvingCoreGraph
from repro.core.resultstore import QueryResultStore
from repro.core.batch2phase import two_phase_batch, BatchTwoPhaseResult

__all__ = [
    "CoreGraphIndex",
    "CoreGraphAdvisor",
    "EvolvingCoreGraph",
    "QueryResultStore",
    "two_phase_batch",
    "BatchTwoPhaseResult",
    "CoreGraph",
    "HubData",
    "build_core_graph",
    "build_unweighted_core_graph",
    "build_cg",
    "solution_edge_mask",
    "add_connectivity_edges",
    "two_phase",
    "TwoPhaseResult",
    "certify_precise",
    "supports_triangle",
    "measure_precision",
    "PrecisionReport",
]
