"""CoreGraphIndex: one object owning every core graph of a graph.

The paper's deployment story is "identify once, answer all future queries":
an index builds (or lazily loads) the specialized CGs for the weighted
queries plus the general CG shared by REACH/WCC, persists them, and routes
any query through the 2Phase evaluation — with the triangle optimization
wherever it is supported.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union


from repro.core.coregraph import CoreGraph
from repro.core.dispatch import build_cg
from repro.core.triangle import supports_triangle
from repro.core.twophase import TwoPhaseResult, two_phase
from repro.graph.csr import Graph
from repro.queries.base import QuerySpec
from repro.queries.registry import ALL_SPECS, cg_spec_for, get_spec


class CoreGraphIndex:
    """Lazily built registry of the core graphs serving one graph."""

    def __init__(self, g: Graph, num_hubs: int = 20) -> None:
        self.g = g
        self.num_hubs = num_hubs
        self._cgs: Dict[str, CoreGraph] = {}

    # ------------------------------------------------------------------
    def core_graph(self, spec: Union[QuerySpec, str]) -> CoreGraph:
        """The CG serving ``spec`` (WCC resolves to REACH's general CG)."""
        spec = get_spec(spec) if isinstance(spec, str) else spec
        key = cg_spec_for(spec).name
        if key not in self._cgs:
            self._cgs[key] = build_cg(self.g, spec, num_hubs=self.num_hubs)
        return self._cgs[key]

    def build_all(self) -> "CoreGraphIndex":
        """Materialize every CG the six query kinds need (5 distinct)."""
        for spec in ALL_SPECS:
            self.core_graph(spec)
        return self

    @property
    def built(self) -> Dict[str, CoreGraph]:
        return dict(self._cgs)

    # ------------------------------------------------------------------
    def answer(
        self,
        spec: Union[QuerySpec, str],
        source: Optional[int] = None,
        triangle: Optional[bool] = None,
    ) -> TwoPhaseResult:
        """2Phase-evaluate a query, defaulting triangle to "if supported"."""
        spec = get_spec(spec) if isinstance(spec, str) else spec
        cg = self.core_graph(spec)
        if triangle is None:
            triangle = supports_triangle(spec) and not spec.multi_source
        return two_phase(self.g, cg, spec, source, triangle=triangle)

    # ------------------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> Path:
        """Persist every built CG under ``directory``."""
        from repro.io.binary import save_core_graph

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for name, cg in self._cgs.items():
            save_core_graph(cg, directory / f"cg-{name.lower()}.npz")
        return directory

    @classmethod
    def load(
        cls, g: Graph, directory: Union[str, Path], num_hubs: int = 20
    ) -> "CoreGraphIndex":
        """Load previously saved CGs; missing ones rebuild lazily."""
        from repro.io.binary import load_core_graph

        index = cls(g, num_hubs=num_hubs)
        for path in Path(directory).glob("cg-*.npz"):
            cg = load_core_graph(path)
            if cg.graph.num_vertices != g.num_vertices:
                raise ValueError(
                    f"{path} belongs to a different graph "
                    f"({cg.graph.num_vertices} != {g.num_vertices} vertices)"
                )
            index._cgs[cg.spec_name] = cg
        return index

    def __repr__(self) -> str:
        built = ", ".join(sorted(self._cgs)) or "none"
        return (
            f"CoreGraphIndex(n={self.g.num_vertices}, "
            f"hubs={self.num_hubs}, built=[{built}])"
        )
