"""Dispatch: which identification algorithm builds the CG for a query kind.

The paper builds *specialized* core graphs (Algorithm 1) for the four
weighted queries and one *general* core graph (Algorithm 2) shared by REACH
and WCC.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.coregraph import CoreGraph
from repro.core.identify import DEFAULT_NUM_HUBS, build_core_graph
from repro.core.unweighted import build_unweighted_core_graph
from repro.graph.csr import Graph
from repro.queries.base import QuerySpec
from repro.queries.registry import cg_spec_for


def build_cg(
    g: Graph,
    spec: QuerySpec,
    num_hubs: int = DEFAULT_NUM_HUBS,
    hubs: Optional[Sequence[int]] = None,
    connectivity: bool = True,
    **kwargs,
) -> CoreGraph:
    """Build the core graph serving ``spec`` using the paper's recipe.

    Weighted queries get a specialized Algorithm 1 CG; REACH and WCC share
    the general Algorithm 2 CG (WCC resolves to REACH's).
    """
    target = cg_spec_for(spec)
    if target.identification == "algorithm1":
        return build_core_graph(
            g, target, num_hubs=num_hubs, hubs=hubs,
            connectivity=connectivity, **kwargs,
        )
    track_growth = kwargs.pop("track_growth", False)
    budget = kwargs.pop("budget", None)
    progress = kwargs.pop("progress", None)
    kwargs.pop("keep_hub_values", None)  # Algorithm 2 keeps no hub values
    if kwargs:
        raise TypeError(f"unsupported options for Algorithm 2: {sorted(kwargs)}")
    return build_unweighted_core_graph(
        g, num_hubs=num_hubs, hubs=hubs,
        connectivity=connectivity, track_growth=track_growth, spec=target,
        budget=budget, progress=progress,
    )
