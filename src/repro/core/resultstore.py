"""Memoized query answering over a CoreGraphIndex.

The paper's workload is "all future queries" over one graph; repeated
sources are common (hubs get queried constantly). This store fronts a
:class:`~repro.core.index.CoreGraphIndex` with an LRU of converged value
arrays keyed by (query kind, source), so a repeated query costs a dict
lookup.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.core.index import CoreGraphIndex
from repro.queries.base import QuerySpec
from repro.queries.registry import get_spec


@dataclass
class StoreStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class QueryResultStore:
    """LRU-cached exact query answers."""

    def __init__(self, index: CoreGraphIndex, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.index = index
        self.capacity = capacity
        self.stats = StoreStats()
        self._cache: "OrderedDict[Tuple[str, Optional[int]], np.ndarray]" = (
            OrderedDict()
        )

    def query(
        self, spec: Union[QuerySpec, str], source: Optional[int] = None
    ) -> np.ndarray:
        """Converged values for ``(spec, source)``; cached after first use.

        Returned arrays are read-only views — copy before mutating.
        """
        spec = get_spec(spec) if isinstance(spec, str) else spec
        key = (spec.name, None if spec.multi_source else int(source))
        if key in self._cache:
            self.stats.hits += 1
            self._cache.move_to_end(key)
            return self._cache[key]
        self.stats.misses += 1
        result = self.index.answer(spec, key[1])
        values = result.values
        values.setflags(write=False)
        self._cache[key] = values
        if len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
            self.stats.evictions += 1
        return values

    def invalidate(self) -> int:
        """Drop every cached answer (call after the graph changes)."""
        dropped = len(self._cache)
        self._cache.clear()
        return dropped

    def __len__(self) -> int:
        return len(self._cache)

    def __repr__(self) -> str:
        return (
            f"QueryResultStore({len(self._cache)}/{self.capacity} cached, "
            f"{100 * self.stats.hit_rate:.0f}% hit rate)"
        )
