"""When is a core graph worth using? A calibrated per-query advisor.

The paper's §2.1 Limitations: outside the power-law regime "core graphs may
have different forms and different degree of precision" — e.g. on a road
lattice the CG keeps most edges yet answers few vertices precisely, and a
2Phase run just wastes its core phase. This advisor measures the CG's
actual quality on a few calibration queries and predicts, per future query,
whether bootstrapping beats direct evaluation:

    direct   ≈ baseline edge visits
    2phase   ≈ cg_edges_visited + completion edge visits

both taken from the calibration sample. The decision is a simple expected-
work comparison with a safety margin, so a CG on a lattice is (correctly)
advised against while the same code on a power-law graph advises in favor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.coregraph import CoreGraph
from repro.core.twophase import TwoPhaseResult, two_phase
from repro.engines.frontier import evaluate_query
from repro.engines.stats import RunStats
from repro.graph.csr import Graph
from repro.queries.base import QuerySpec


@dataclass
class Calibration:
    """Measured work profile of one (graph, CG, query-kind) pairing."""

    spec_name: str
    samples: int
    avg_direct_edges: float
    avg_two_phase_edges: float
    avg_precision_pct: float

    @property
    def expected_speedup(self) -> float:
        """Work ratio direct / 2phase (edge visits as the work proxy)."""
        if self.avg_two_phase_edges <= 0:
            return float("inf")
        return self.avg_direct_edges / self.avg_two_phase_edges


class CoreGraphAdvisor:
    """Calibrate once on sample queries, then advise per future query."""

    def __init__(
        self,
        g: Graph,
        cg: CoreGraph,
        spec: QuerySpec,
        margin: float = 1.05,
    ) -> None:
        """``margin``: required expected work ratio before advising the
        2Phase path (hedge against sampling noise)."""
        if margin <= 0:
            raise ValueError("margin must be positive")
        self.g = g
        self.cg = cg
        self.spec = spec
        self.margin = margin
        self.calibration: Optional[Calibration] = None

    # ------------------------------------------------------------------
    def calibrate(self, sources: Sequence[int]) -> Calibration:
        """Run the sample queries both ways and record the work profile."""
        if not len(sources):
            raise ValueError("need at least one calibration source")
        direct_edges, two_phase_edges, precise_pct = [], [], []
        n = self.g.num_vertices
        for s in sources:
            s = int(s)
            baseline = RunStats()
            truth = evaluate_query(self.g, self.spec, s, stats=baseline)
            res = two_phase(self.g, self.cg, self.spec, s)
            direct_edges.append(baseline.edges_processed)
            two_phase_edges.append(res.total.edges_processed)
            cg_vals = evaluate_query(self.cg.graph, self.spec, s)
            precise = self.spec.values_equal(cg_vals, truth)
            precise_pct.append(100.0 * precise.sum() / n)
        self.calibration = Calibration(
            spec_name=self.spec.name,
            samples=len(sources),
            avg_direct_edges=float(np.mean(direct_edges)),
            avg_two_phase_edges=float(np.mean(two_phase_edges)),
            avg_precision_pct=float(np.mean(precise_pct)),
        )
        return self.calibration

    # ------------------------------------------------------------------
    @property
    def recommends_core_graph(self) -> bool:
        """True when the calibrated work ratio clears the margin."""
        if self.calibration is None:
            raise RuntimeError("calibrate() first")
        return self.calibration.expected_speedup >= self.margin

    def answer(
        self, source: Optional[int] = None, triangle: bool = False
    ) -> Union[TwoPhaseResult, np.ndarray]:
        """Evaluate one query via whichever path the calibration favors.

        Returns a :class:`TwoPhaseResult` when the CG path is taken, or
        the bare value array from direct evaluation otherwise.
        """
        if self.recommends_core_graph:
            return two_phase(
                self.g, self.cg, self.spec, source, triangle=triangle
            )
        return evaluate_query(self.g, self.spec, source)

    def __repr__(self) -> str:
        state = "uncalibrated"
        if self.calibration is not None:
            verdict = "use CG" if self.recommends_core_graph else "go direct"
            state = (
                f"{self.calibration.expected_speedup:.2f}x expected, "
                f"{self.calibration.avg_precision_pct:.1f}% precise -> "
                f"{verdict}"
            )
        return f"CoreGraphAdvisor({self.spec.name}: {state})"
