"""Additional connectivity edges (Algorithm 1, lines 8–12).

After the centrality edges of the hub queries are collected, every vertex
with non-zero out-degree that has no out-edge in the core graph gets one:
the lowest-weight out-edge for MIN-style queries (more likely to lie on
shortest/narrowest paths) or the highest-weight one for SSWP.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.queries.base import QuerySpec


def add_connectivity_edges(g: Graph, edge_mask: np.ndarray, spec: QuerySpec) -> int:
    """Mutate ``edge_mask`` to connect out-edge-less vertices; return #added."""
    edge_mask = np.asarray(edge_mask)
    if edge_mask.shape != g.dst.shape:
        raise ValueError("edge_mask must parallel the edge array")
    has_cg_out = np.zeros(g.num_vertices, dtype=bool)
    if edge_mask.any():
        has_cg_out[g.edge_sources()[edge_mask]] = True
    missing = np.flatnonzero((g.out_degree() > 0) & ~has_cg_out)
    weights = g.edge_weights()
    for u in missing:
        lo, hi = int(g.offsets[u]), int(g.offsets[u + 1])
        if spec.connectivity_pick == "min":
            pick = lo + int(np.argmin(weights[lo:hi]))
        elif spec.connectivity_pick == "max":
            pick = lo + int(np.argmax(weights[lo:hi]))
        else:  # "any": the first stored out-edge
            pick = lo
        edge_mask[pick] = True
    return int(missing.size)
