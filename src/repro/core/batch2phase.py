"""Batched 2Phase: many queries of one kind through both phases at once.

The paper's workload is thousands of vertex queries over one graph; the
batch engine (``repro.engines.batch``) advances k sources together with
shared edge gathers, and this module runs the *whole 2Phase pipeline* that
way: one batched core phase on the CG, then one batched completion phase
on the full graph.

Correctness note: the per-query completion phase uses the paper's
``FirstPhase2Visit`` rule; the batched variant relies on the equivalent
change-driven argument instead (every impacted vertex is in the initial
frontier and pushes its full-graph out-edges in round one; an
unreached-in-CG vertex holds the lattice bottom, so its first touch always
improves and reactivates it). Results are identical — the equivalence is
asserted against the per-query path in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

import numpy as np

from repro.core.coregraph import CoreGraph
from repro.engines.frontier import ragged_gather, symmetric_view
from repro.engines.stats import IterationInfo, RunStats
from repro.graph.csr import Graph
from repro.queries.base import QuerySpec, Selection


@dataclass
class BatchTwoPhaseResult:
    """Converged value matrix (k x n) plus per-phase batch statistics."""

    values: np.ndarray
    sources: list
    phase1: RunStats = field(default_factory=RunStats)
    phase2: RunStats = field(default_factory=RunStats)

    @property
    def total(self) -> RunStats:
        return self.phase1.merged_with(self.phase2)


def _batched_rounds(
    work: Graph,
    spec: QuerySpec,
    vals: np.ndarray,
    frontier: np.ndarray,
    stats: RunStats,
) -> None:
    """Shared-frontier synchronous rounds over a (k, n) value matrix."""
    weights = spec.weight_transform(work.edge_weights())
    k = vals.shape[0]
    row_idx = np.arange(k)[:, None]
    iteration = 0
    while frontier.size:
        edge_idx, u = ragged_gather(work.offsets, frontier)
        if edge_idx.size == 0:
            break
        v = work.dst[edge_idx]
        old = vals[:, v]
        cand = spec.propagate(vals[:, u], weights[edge_idx][None, :])
        improving = spec.better(cand, old)
        if spec.selection is Selection.MIN:
            np.minimum.at(vals, (row_idx, v[None, :]), cand)
        else:
            np.maximum.at(vals, (row_idx, v[None, :]), cand)
        changed_any = spec.better(vals[:, v], old).any(axis=0)
        new_frontier = np.unique(v[changed_any])
        stats.record(IterationInfo(
            index=iteration,
            frontier_size=int(frontier.size),
            edges_scanned=int(edge_idx.size),
            updates=int(np.count_nonzero(improving)),
            activated=int(new_frontier.size),
        ))
        frontier = new_frontier
        iteration += 1


def two_phase_batch(
    g: Graph,
    proxy: Union[CoreGraph, Graph],
    spec: QuerySpec,
    sources: Sequence[int],
) -> BatchTwoPhaseResult:
    """2Phase-evaluate every source in one batched pipeline.

    Row ``i`` of the result equals ``two_phase(g, proxy, spec,
    sources[i]).values``. Triangle certificates are per-source and are not
    applied in batch mode.
    """
    if spec.multi_source:
        raise ValueError("batched 2Phase applies to single-source queries")
    proxy_g = proxy.graph if isinstance(proxy, CoreGraph) else proxy
    if proxy_g.num_vertices != g.num_vertices:
        raise ValueError("proxy graph must share the full graph's vertex set")
    sources = [int(s) for s in sources]
    n = g.num_vertices
    k = len(sources)
    vals = np.full((k, n), spec.init_value, dtype=np.float64)
    for i, s in enumerate(sources):
        if not 0 <= s < n:
            raise ValueError(f"source {s} out of range")
        vals[i, s] = spec.source_value

    work_cg = symmetric_view(proxy_g) if spec.symmetric else proxy_g
    phase1 = RunStats()
    _batched_rounds(
        work_cg, spec, vals,
        np.unique(np.asarray(sources, dtype=np.int64)), phase1,
    )

    # Completion: the union of every query's impacted vertices.
    reached_any = spec.reached(vals).any(axis=0)
    impacted = np.flatnonzero(reached_any)
    work = symmetric_view(g) if spec.symmetric else g
    phase2 = RunStats()
    _batched_rounds(work, spec, vals, impacted, phase2)

    return BatchTwoPhaseResult(
        values=vals, sources=sources, phase1=phase1, phase2=phase2
    )
