"""Core graphs and non-monotonic algorithms: the paper's open problem.

For monotonic queries the 2Phase algorithm is *exact* because core-phase
values sit on the correct side of the value lattice and the completion
phase only improves them. PageRank has no such lattice: a CG-bootstrapped
run is merely a warm start of the full-graph power iteration. This module
quantifies what that warm start buys (iterations saved) and what it cannot
guarantee (the core-phase vector itself can be arbitrarily wrong), backing
the paper's closing remark in §2.1 with measurements
(``benchmarks/bench_ablation_pagerank.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.core.coregraph import CoreGraph
from repro.graph.csr import Graph
from repro.queries.pagerank import PageRankResult, pagerank


@dataclass
class WarmStartStudy:
    """Measured effect of CG-bootstrapping PageRank."""

    cold: PageRankResult
    warm: PageRankResult
    phase1: PageRankResult
    phase1_error_l1: float      # how wrong the CG-only ranks are
    iterations_saved: int
    final_divergence_l1: float  # warm vs cold fixed points (≈ tol)

    @property
    def iteration_reduction_pct(self) -> float:
        if self.cold.iterations == 0:
            return 0.0
        return 100.0 * self.iterations_saved / self.cold.iterations


def bootstrap_pagerank(
    g: Graph,
    proxy: Union[CoreGraph, Graph],
    damping: float = 0.85,
    tol: float = 1e-12,
    max_iterations: int = 500,
) -> WarmStartStudy:
    """Run PageRank cold and CG-warm-started; measure the difference.

    The warm start runs PageRank to convergence on the proxy graph, then
    uses those ranks to initialize the full-graph iteration.
    """
    proxy_g = proxy.graph if isinstance(proxy, CoreGraph) else proxy
    if proxy_g.num_vertices != g.num_vertices:
        raise ValueError("proxy must share the full graph's vertex set")
    cold = pagerank(g, damping, tol, max_iterations)
    phase1 = pagerank(proxy_g, damping, tol, max_iterations)
    warm = pagerank(g, damping, tol, max_iterations, init=phase1.ranks)
    return WarmStartStudy(
        cold=cold,
        warm=warm,
        phase1=phase1,
        phase1_error_l1=float(np.abs(phase1.ranks - cold.ranks).sum()),
        iterations_saved=cold.iterations - warm.iterations,
        final_divergence_l1=float(np.abs(warm.ranks - cold.ranks).sum()),
    )
