"""Core-graph maintenance under graph evolution.

The authors' companion work (CommonGraph, JetStream, MEGA) targets evolving
graphs; this module works out what evolution means for core graphs:

* **Insertions are free for correctness.** The 2Phase algorithm is exact
  for *any* subgraph proxy, so a CG built yesterday still yields exact
  results on today's grown graph — only its *quality* (core-phase
  precision, hence speedup) decays as new solution paths appear outside it.
* **Deletions are not.** Exactness requires ``CG ⊆ G`` (core-phase values
  must stay on the pessimistic side of the lattice); a deleted full-graph
  edge must therefore be dropped from the CG too.
* **Theorem 1 certificates survive neither direction.** The hub values
  they compare against were computed on the build-time graph; insertions
  can improve true values below a stale bound and deletions can invalidate
  the hub values themselves, so the maintainer disables the triangle
  optimization after *any* churn until the next rebuild (see
  ``docs/theory.md``).

:class:`EvolvingCoreGraph` applies both rules, tracks staleness, and
rebuilds when a sampled precision probe drops below a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.core.coregraph import CoreGraph
from repro.core.dispatch import build_cg
from repro.core.precision import measure_precision
from repro.core.twophase import TwoPhaseResult, two_phase
from repro.graph.csr import Graph
from repro.graph.mutate import add_edges, remove_edges
from repro.queries.base import QuerySpec


def _membership_mask(g: Graph, sub: Graph) -> np.ndarray:
    """Mask over ``g``'s edge array marking the edges present in ``sub``.

    Multiset-aware: if churn left ``g`` with parallel duplicates of a
    ``sub`` edge, only as many copies are marked as ``sub`` holds, so
    ``mask.sum() == sub.num_edges`` stays true.
    """

    def rows(x: Graph) -> np.ndarray:
        src = np.repeat(
            np.arange(x.num_vertices, dtype=np.int64), np.diff(x.offsets)
        )
        w = x.weights if x.weights is not None else np.zeros(x.num_edges)
        out = np.empty(
            x.num_edges, dtype=[("u", "i8"), ("v", "i8"), ("w", "f8")]
        )
        out["u"], out["v"], out["w"] = src, x.dst, w
        return out

    g_rows = rows(g)
    order = np.argsort(g_rows, kind="stable")
    gs = g_rows[order]
    occurrence = np.arange(len(gs)) - np.searchsorted(gs, gs, side="left")
    sub_sorted = np.sort(rows(sub))
    copies_in_sub = (
        np.searchsorted(sub_sorted, gs, side="right")
        - np.searchsorted(sub_sorted, gs, side="left")
    )
    mask = np.empty(len(gs), dtype=bool)
    mask[order] = occurrence < copies_in_sub
    return mask


@dataclass
class MaintenanceStats:
    """Churn bookkeeping since the last (re)build."""

    inserted_edges: int = 0
    deleted_edges: int = 0
    rebuilds: int = 0
    last_probe_precision: float = 100.0


class EvolvingCoreGraph:
    """A (graph, core graph) pair that absorbs edge churn safely."""

    def __init__(
        self,
        g: Graph,
        spec: QuerySpec,
        num_hubs: int = 20,
        rebuild_below_precision: float = 95.0,
        probe_sources: int = 3,
        probe_seed: int = 7,
        cg: Optional[CoreGraph] = None,
    ) -> None:
        self.spec = spec
        self.num_hubs = num_hubs
        self.rebuild_below_precision = rebuild_below_precision
        self.probe_sources = probe_sources
        self.probe_seed = probe_seed
        self.graph = g
        # ``cg`` lets recovery re-adopt a persisted proxy (snapshot +
        # WAL replay) without re-running Algorithm 1/2; fresh
        # construction identifies the CG from scratch.
        self.cg: CoreGraph = (
            cg if cg is not None else build_cg(g, spec, num_hubs=num_hubs)
        )
        self.stats = MaintenanceStats()
        self._triangle_safe = True

    @property
    def triangle_safe(self) -> bool:
        """Whether Theorem-1 certificates are currently sound (no churn
        since the last build/rebuild)."""
        return self._triangle_safe

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------
    def insert_edges(self, edges: Iterable) -> None:
        """Grow the full graph; the CG keeps its edges (still a subgraph).

        Exactness of 2Phase answers is unaffected, but Theorem 1
        certificates become unsound: a new edge can improve true values
        below a bound computed from the build-time hub values (e.g. a
        fresh shortcut toward a hub shrinks ``B[s]`` while the stored one
        doesn't), so the triangle pass is disabled until the next rebuild.
        """
        edges = list(edges)
        self.graph = add_edges(self.graph, edges)
        self.stats.inserted_edges += len(edges)
        if edges:
            self._realign_mask(self.cg.graph)
            self._triangle_safe = False

    def delete_edges(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Shrink the full graph AND the CG (the ``CG ⊆ G`` invariant).

        Hub values become stale, so Theorem 1 certificates are disabled
        until the next rebuild.
        """
        pairs = list(pairs)
        self.graph, removed_full = remove_edges(self.graph, pairs)
        cg_graph, removed_cg = remove_edges(self.cg.graph, pairs)
        if removed_full.any() or removed_cg.any():
            self._realign_mask(cg_graph)
        self.stats.deleted_edges += int(removed_full.sum())
        if pairs:
            self._triangle_safe = False

    def _realign_mask(self, cg_graph: Graph) -> None:
        """Rebind the CG to the current graph with a freshly computed mask.

        ``add_edges``/``remove_edges`` re-index the CSR edge arrays, so
        the build-time ``edge_mask`` no longer addresses this graph's
        edges; recompute it as membership of the surviving CG edges.
        """
        self.cg = CoreGraph(
            graph=cg_graph,
            edge_mask=_membership_mask(self.graph, cg_graph),
            spec_name=self.cg.spec_name,
            hubs=self.cg.hubs,
            hub_data=self.cg.hub_data,
            connectivity_edges=self.cg.connectivity_edges,
            source_num_edges=self.graph.num_edges,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def answer(
        self, source: Optional[int] = None, triangle: bool = False
    ) -> TwoPhaseResult:
        """Exact 2Phase evaluation on the current graph."""
        use_triangle = triangle and self._triangle_safe
        return two_phase(
            self.graph, self.cg, self.spec, source, triangle=use_triangle
        )

    # ------------------------------------------------------------------
    # Maintenance policy
    # ------------------------------------------------------------------
    def probe_precision(self, sources: Optional[Sequence[int]] = None) -> float:
        """Sampled core-phase precision on the current graph."""
        if sources is None:
            rng = np.random.default_rng(self.probe_seed)
            candidates = np.flatnonzero(self.graph.out_degree() > 0)
            if candidates.size == 0:
                return 100.0
            k = min(self.probe_sources, candidates.size)
            sources = rng.choice(candidates, k, replace=False)
        report = measure_precision(
            self.graph, self.cg, self.spec, [int(s) for s in sources]
        )
        self.stats.last_probe_precision = report.pct_precise
        return report.pct_precise

    def maybe_rebuild(self) -> bool:
        """Probe quality; rebuild the CG when it fell below the threshold.

        Returns True when a rebuild happened.
        """
        if self.probe_precision() >= self.rebuild_below_precision:
            return False
        self.rebuild()
        return True

    def rebuild(self, budget=None, progress=None) -> None:
        """Re-identify the CG on the current graph (the one-time cost).

        ``budget`` (a :class:`repro.resilience.Budget`) bounds the hub
        queries; ``progress(done, total)`` is invoked after each hub so a
        supervised rebuilder can checkpoint between hubs.
        """
        kwargs = {}
        if budget is not None:
            kwargs["budget"] = budget
        if progress is not None:
            kwargs["progress"] = progress
        self.cg = build_cg(
            self.graph, self.spec, num_hubs=self.num_hubs, **kwargs
        )
        self.stats.rebuilds += 1
        self._triangle_safe = True

    def __repr__(self) -> str:
        return (
            f"EvolvingCoreGraph({self.spec.name}, |E|={self.graph.num_edges}, "
            f"cg={100 * self.cg.num_edges / max(1, self.graph.num_edges):.1f}%, "
            f"+{self.stats.inserted_edges}/-{self.stats.deleted_edges} edges, "
            f"{self.stats.rebuilds} rebuilds)"
        )
