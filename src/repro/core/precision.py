"""Measuring proxy-graph precision (Tables 5, 13c, 15, 16).

A vertex's result is *precise* when the query converged on the proxy graph
to the same value as on the full graph. The paper reports the average
percentage of precise vertices over ten random queries, the maximum number
of imprecise vertices, and (for SSSP) the average percentage error of the
imprecise values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.coregraph import CoreGraph
from repro.engines.frontier import evaluate_query
from repro.graph.csr import Graph
from repro.queries.base import QuerySpec


@dataclass
class PrecisionReport:
    """Aggregated precision of one proxy graph for one query kind."""

    spec_name: str
    num_queries: int
    pct_precise: float
    max_imprecise: int
    avg_error_pct: float
    per_query_pct: List[float] = field(default_factory=list)

    def __str__(self) -> str:
        return (
            f"{self.spec_name}: {self.pct_precise:.1f}% precise "
            f"(max {self.max_imprecise} imprecise, "
            f"avg err {self.avg_error_pct:.2f}%)"
        )


def _proxy_graph(proxy: Union[CoreGraph, Graph]) -> Graph:
    return proxy.graph if isinstance(proxy, CoreGraph) else proxy


def compare_values(
    spec: QuerySpec, proxy_vals: np.ndarray, true_vals: np.ndarray
) -> np.ndarray:
    """Per-vertex precision mask (equal values, infinities matching)."""
    return spec.values_equal(proxy_vals, true_vals)


def measure_precision(
    g: Graph,
    proxy: Union[CoreGraph, Graph],
    spec: QuerySpec,
    sources: Optional[Sequence[int]] = None,
    true_values: Optional[Sequence[np.ndarray]] = None,
) -> PrecisionReport:
    """Evaluate ``spec`` on the proxy and the full graph; compare per vertex.

    ``sources`` is ignored for multi-source queries (WCC), which run once.
    ``true_values`` may supply precomputed full-graph results (parallel to
    ``sources``) to amortize ground truth across proxies.
    """
    proxy_g = _proxy_graph(proxy)
    if spec.multi_source:
        source_list: List[Optional[int]] = [None]
    else:
        if sources is None:
            raise ValueError(f"{spec.name} requires sources")
        source_list = [int(s) for s in sources]

    pcts: List[float] = []
    max_imprecise = 0
    errors: List[float] = []
    n = g.num_vertices
    for i, s in enumerate(source_list):
        truth = (
            np.asarray(true_values[i])
            if true_values is not None
            else evaluate_query(g, spec, s)
        )
        approx = evaluate_query(proxy_g, spec, s)
        precise = compare_values(spec, approx, truth)
        imprecise = int(n - precise.sum())
        pcts.append(100.0 * (n - imprecise) / n)
        max_imprecise = max(max_imprecise, imprecise)
        bad = ~precise
        finite = bad & np.isfinite(truth) & np.isfinite(approx) & (truth != 0)
        if finite.any():
            rel = np.abs(approx[finite] - truth[finite]) / np.abs(truth[finite])
            errors.append(100.0 * float(rel.mean()))
    return PrecisionReport(
        spec_name=spec.name,
        num_queries=len(source_list),
        pct_precise=float(np.mean(pcts)),
        max_imprecise=max_imprecise,
        avg_error_pct=float(np.mean(errors)) if errors else 0.0,
        per_query_pct=pcts,
    )
