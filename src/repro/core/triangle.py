"""Triangle-inequality precision certificates (Theorem 1, §2.2).

After the core phase computes ``Val(s, v).CG`` for every vertex, some values
can be *proven* precise from the hub queries' full-graph results, because
the core graph is a subgraph (its values can only be worse than the full
graph's) while the graph triangle inequality bounds how good the full-graph
value can be. Vertices holding a certificate have their incoming edges
removed from the completion phase — propagation into them is provably
wasted work.

Derivations per query kind (hub ``h``; ``F[v] = Q(h).Val(v)`` forward on
``G``, ``B[v] = Val(v → h)`` backward on ``G``; ``cg[v]`` the core-phase
value from source ``s``):

* **SSSP** (Theorem 1 verbatim): ``dist(s,v).G >= B[s] - B[v]`` and
  ``dist(s,v).G >= F[v] - F[s]``; since ``cg >= dist.G``, equality with
  either bound certifies precision.
* **Viterbi** (multiplicative analogue): ``prob(s,v)*prob(v,h) <= prob(s,h)``
  gives ``prob(s,v).G <= B[s]/B[v]``, and symmetrically ``<= F[v]/F[s]``;
  since ``cg <= prob.G``, equality certifies.
* **SSWP**: from ``width(s,h) >= min(width(s,v), width(v,h))``, whenever
  ``B[v] > B[s]`` the min must be ``width(s,v)``, so ``width(s,v).G <=
  B[s]``; equality of ``cg`` with ``B[s]`` certifies. Symmetrically with
  ``F[s] > F[v]`` and bound ``F[v]``.
* **SSNP**: dual of SSWP — ``B[v] < B[s]`` forces ``nar(s,v).G >= B[s]``,
  and ``F[s] < F[v]`` forces ``nar(s,v).G >= F[v]``.
* **REACH**: a vertex reached in the CG is reached in ``G`` (subgraph), so
  ``cg == 1`` is itself a certificate; no hub data needed.

WCC has no per-source triangle structure; it is not supported (the paper
applies the optimization to SSNP, Viterbi, and SSWP — Table 12).
"""

from __future__ import annotations

import numpy as np

from repro.core.coregraph import CoreGraph
from repro.queries.base import QuerySpec

_SUPPORTED = {"SSSP", "BFS", "SSNP", "SSWP", "Viterbi", "REACH"}


def supports_triangle(spec: QuerySpec) -> bool:
    """Whether Theorem 1 certificates are implemented for ``spec``."""
    return spec.name in _SUPPORTED


def _finite(a: np.ndarray) -> np.ndarray:
    return np.isfinite(a)


def certify_precise(
    cg: CoreGraph, spec: QuerySpec, source: int, cg_vals: np.ndarray
) -> np.ndarray:
    """Boolean mask of vertices whose core-phase value is provably precise.

    ``cg_vals`` is the converged core-phase value array for ``source``.
    Certificates are sound but incomplete: a False entry says nothing.
    """
    if not supports_triangle(spec):
        raise ValueError(f"triangle optimization not supported for {spec.name}")
    n = cg_vals.shape[0]
    certified = np.zeros(n, dtype=bool)

    if spec.name == "REACH":
        # Subgraph reachability implies full-graph reachability.
        return cg_vals == 1.0

    for hub_data in cg.hub_data:
        F, B = hub_data.forward, hub_data.backward
        f_s, b_s = F[source], B[source]
        if spec.name in ("SSSP", "BFS"):
            # BFS is unit-weight SSSP; the additive bounds apply verbatim.
            if np.isfinite(b_s):
                bound = b_s - B
                certified |= _finite(B) & spec.values_equal(cg_vals, bound)
            if np.isfinite(f_s):
                bound = F - f_s
                certified |= _finite(F) & spec.values_equal(cg_vals, bound)
        elif spec.name == "Viterbi":
            if b_s > 0.0:
                with np.errstate(divide="ignore", invalid="ignore"):
                    bound = np.where(B > 0.0, b_s / B, np.nan)
                certified |= (B > 0.0) & spec.values_equal(cg_vals, bound)
            if f_s > 0.0:
                bound = F / f_s
                certified |= (F > 0.0) & spec.values_equal(cg_vals, bound)
        elif spec.name == "SSWP":
            if np.isfinite(b_s) or np.isposinf(b_s):
                certified |= (B > b_s) & spec.values_equal(
                    cg_vals, np.full(n, b_s)
                )
            certified |= (
                (f_s > F) & _finite(F) & spec.values_equal(cg_vals, F)
            )
        elif spec.name == "SSNP":
            if np.isfinite(b_s) or np.isneginf(b_s):
                certified |= (B < b_s) & spec.values_equal(
                    cg_vals, np.full(n, b_s)
                )
            certified |= (
                (f_s < F) & _finite(F) & spec.values_equal(cg_vals, F)
            )
    return certified
