"""Two-phase query evaluation (Algorithm 3).

The Core Phase converges the query on the small in-memory core graph; the
Completion Phase resumes on the full graph from every impacted vertex,
applying the ``FirstPhase2Visit`` rule so all reachable vertices push their
full-graph out-edges at least once, which guarantees 100% precise results.
With ``triangle=True`` the Theorem 1 certificates additionally remove the
incoming edges of provably precise vertices from the completion phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.core.coregraph import CoreGraph
from repro.core.triangle import certify_precise
from repro.engines.frontier import run_push, symmetric_view
from repro.engines.stats import RunStats
from repro.graph.csr import Graph
from repro.obs import journal as obs_journal
from repro.obs import metrics as obs_metrics
from repro.obs import quality as obs_quality
from repro.obs import runtime as obs_runtime
from repro.obs.spans import span
from repro.queries.base import QuerySpec


@dataclass
class TwoPhaseResult:
    """Outcome of one 2Phase evaluation.

    ``values`` is precise for every vertex (the 2Phase guarantee). The two
    ``RunStats`` expose the per-phase work; ``impacted`` is the size of the
    completion phase's initial frontier and ``certified_precise`` counts the
    vertices whose in-edges the triangle optimization removed.
    """

    values: np.ndarray
    phase1: RunStats = field(default_factory=RunStats)
    phase2: RunStats = field(default_factory=RunStats)
    impacted: int = 0
    certified_precise: int = 0

    @property
    def total(self) -> RunStats:
        return self.phase1.merged_with(self.phase2)


def _proxy_graph(proxy: Union[CoreGraph, Graph]) -> Graph:
    return proxy.graph if isinstance(proxy, CoreGraph) else proxy


def two_phase(
    g: Graph,
    proxy: Union[CoreGraph, Graph],
    spec: QuerySpec,
    source: Optional[int] = None,
    triangle: bool = False,
    keep_frontier: bool = False,
) -> TwoPhaseResult:
    """Evaluate ``spec`` from ``source`` via the 2Phase algorithm.

    ``proxy`` is normally a :class:`CoreGraph` but any same-vertex-set
    subgraph (e.g. an Abstraction Graph or Sampled Graph baseline) works —
    the completion phase repairs whatever imprecision the proxy leaves.
    ``triangle`` requires a :class:`CoreGraph` with retained hub values.
    """
    proxy_g = _proxy_graph(proxy)
    if proxy_g.num_vertices != g.num_vertices:
        raise ValueError("proxy graph must share the full graph's vertex set")

    n = g.num_vertices
    phase1_stats = RunStats()
    work_cg = symmetric_view(proxy_g) if spec.symmetric else proxy_g
    vals = spec.initial_values(n, source)
    frontier = spec.initial_frontier(n, source)
    with span("twophase.core", query=spec.name):
        run_push(
            work_cg, spec, vals, frontier,
            stats=phase1_stats, keep_frontier=keep_frontier,
        )
    # The completion phase's output is the full-graph ground truth, so a
    # snapshot of the core-phase values is all the precision measurement
    # needs (one O(n) copy + compare, paid only while tracing).
    phase1_snapshot = vals.copy() if obs_runtime._enabled else None

    if spec.multi_source:
        # Initialization impacts every vertex (each starts with its own
        # label), so the completion phase must start from all of them.
        impacted = np.arange(n, dtype=np.int64)
    else:
        impacted = np.flatnonzero(spec.reached(vals))

    # Reduced(E): remove the incoming edges of provably precise vertices.
    # Lattice saturation (REACH's val == 1) is always available; Theorem 1's
    # hub-distance certificates are the optional triangle optimization.
    blocked = spec.saturated(vals)
    certified = 0
    if triangle:
        if not isinstance(proxy, CoreGraph):
            raise ValueError("triangle optimization requires a CoreGraph")
        if spec.name != "REACH" and not proxy.hub_data:
            raise ValueError(
                "triangle optimization requires hub values; build the core "
                "graph with keep_hub_values=True"
            )
        tri = certify_precise(proxy, spec, int(source), vals)
        blocked = tri if blocked is None else (blocked | tri)
    if blocked is not None:
        certified = int(blocked.sum())

    phase2_stats = RunStats()
    work_g = symmetric_view(g) if spec.symmetric else g
    visited = np.zeros(n, dtype=bool)
    visited[impacted] = True
    with span("twophase.completion", query=spec.name):
        run_push(
            work_g, spec, vals, impacted,
            stats=phase2_stats,
            first_visit=True,
            visited=visited,
            blocked_dst=blocked,
            keep_frontier=keep_frontier,
        )

    if obs_runtime._enabled:
        obs_metrics.gauge("twophase.impacted", query=spec.name).set(
            int(impacted.size)
        )
        obs_metrics.gauge("twophase.certified_precise", query=spec.name).set(
            certified
        )
        precise_fraction = None
        if phase1_snapshot is not None:
            precise_fraction = obs_quality.phase1_precise_fraction(
                spec, phase1_snapshot, vals
            )
        redundant = (
            phase1_stats.redundant_relaxations
            + phase2_stats.redundant_relaxations
        )
        obs_quality.record_two_phase(
            query=spec.name,
            num_vertices=n,
            precise_fraction=precise_fraction,
            certified=certified,
            edges_skipped=phase2_stats.edges_skipped,
            redundant_relaxations=redundant,
        )
        obs_journal.emit(
            {
                "type": "event",
                "name": "twophase.result",
                "query": spec.name,
                "source": None if source is None else int(source),
                "impacted": int(impacted.size),
                "certified_precise": certified,
                "phase1_precise_fraction": precise_fraction,
                "edges_skipped": phase2_stats.edges_skipped,
                "redundant_relaxations": redundant,
                "phase1": phase1_stats.to_dict(include_iterations=False),
                "phase2": phase2_stats.to_dict(include_iterations=False),
            }
        )

    return TwoPhaseResult(
        values=vals,
        phase1=phase1_stats,
        phase2=phase2_stats,
        impacted=int(impacted.size),
        certified_precise=certified,
    )
