"""Two-phase query evaluation (Algorithm 3).

The Core Phase converges the query on the small in-memory core graph; the
Completion Phase resumes on the full graph from every impacted vertex,
applying the ``FirstPhase2Visit`` rule so all reachable vertices push their
full-graph out-edges at least once, which guarantees 100% precise results.
With ``triangle=True`` the Theorem 1 certificates additionally remove the
incoming edges of provably precise vertices from the completion phase.

The evaluation is resilient by construction:

* a :class:`~repro.resilience.budget.Budget` bounds wall-clock/iterations/
  frontier memory across *both* phases; with ``anytime=True`` a budget
  abort returns the partial result with a per-vertex precision
  certificate (Theorem-1 exact / CG-approximate / unreached) and
  ``degraded=True`` instead of raising;
* ``checkpoint_path``/``checkpoint_every`` write atomic fingerprinted
  snapshots at iteration boundaries, and ``resume`` restarts a killed run
  mid-phase, producing values bit-identical to an uninterrupted run;
* ``completion=False`` deliberately sheds the Completion Phase and returns
  the Core-Phase answer as a certificate-carrying degraded result — the
  graceful-degradation lever :mod:`repro.serve` pulls when its circuit
  breaker is open.

Re-entrancy: :func:`two_phase` is safe to call concurrently from many
threads over one shared ``(g, proxy)`` pair. All mutable run state
(``vals``, frontiers, stats, the checkpointer) is per-call; the inputs are
only read. The shared caches it touches are individually synchronized —
:func:`~repro.engines.frontier.symmetric_view` builds under a lock, the
metrics registry and journal serialize internally, and span stacks are
thread-local. A ``budget`` must be a fresh (or :meth:`~repro.resilience.
budget.Budget.reset`) object per call: the entry claim via
``Budget.begin_run`` raises :class:`~repro.resilience.budget.
BudgetReuseError` instead of silently inheriting another run's clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.checks.sanitize import probes as san_probes
from repro.checks.sanitize import runtime as san_runtime
from repro.core.coregraph import CoreGraph
from repro.core.triangle import certify_precise, supports_triangle
from repro.engines.frontier import run_push, symmetric_view
from repro.engines.stats import RunStats
from repro.graph.csr import Graph
from repro.obs import journal as obs_journal
from repro.obs import metrics as obs_metrics
from repro.obs import quality as obs_quality
from repro.obs import runtime as obs_runtime
from repro.obs.spans import span
from repro.queries.base import QuerySpec
from repro.resilience.anytime import certificate_counts, precision_certificate
from repro.resilience.budget import Budget, BudgetExceeded
from repro.resilience.checkpoint import (
    Checkpoint,
    Checkpointer,
    as_checkpoint,
    run_fingerprint,
)
from repro.resilience.faults import fault_point


@dataclass
class TwoPhaseResult:
    """Outcome of one 2Phase evaluation.

    For a completed run ``values`` is precise for every vertex (the 2Phase
    guarantee) and ``degraded`` is False. For a budget-aborted anytime run
    ``degraded`` is True, ``budget_error`` holds the structured abort, and
    only the vertices whose ``certificate`` entry is
    :data:`~repro.resilience.anytime.CERT_EXACT` are guaranteed precise.
    ``degraded_phase`` says where the degradation happened: 1 (Core Phase
    abort), 2 (Completion Phase abort, or the phase was shed with
    ``completion=False`` — then ``budget_error`` is None), else None.
    The two ``RunStats`` expose the per-phase work; ``impacted`` is the
    size of the completion phase's initial frontier and
    ``certified_precise`` counts the vertices whose in-edges the triangle
    optimization removed.
    """

    values: np.ndarray
    phase1: RunStats = field(default_factory=RunStats)
    phase2: RunStats = field(default_factory=RunStats)
    impacted: int = 0
    certified_precise: int = 0
    degraded: bool = False
    budget_error: Optional[BudgetExceeded] = None
    certificate: Optional[np.ndarray] = None
    degraded_phase: Optional[int] = None

    @property
    def total(self) -> RunStats:
        return self.phase1.merged_with(self.phase2)


def _proxy_graph(proxy: Union[CoreGraph, Graph]) -> Graph:
    return proxy.graph if isinstance(proxy, CoreGraph) else proxy


def _certified_mask(
    proxy: Union[CoreGraph, Graph],
    spec: QuerySpec,
    source: Optional[int],
    vals: np.ndarray,
    triangle: bool,
) -> Optional[np.ndarray]:
    """Provably precise vertices: lattice saturation + Theorem 1 (opt-in)."""
    blocked = spec.saturated(vals)
    if triangle:
        if not isinstance(proxy, CoreGraph):
            raise ValueError("triangle optimization requires a CoreGraph")
        if spec.name != "REACH" and not proxy.hub_data:
            raise ValueError(
                "triangle optimization requires hub values; build the core "
                "graph with keep_hub_values=True"
            )
        tri = certify_precise(proxy, spec, int(source), vals)
        blocked = tri if blocked is None else (blocked | tri)
    return blocked


def two_phase(
    g: Graph,
    proxy: Union[CoreGraph, Graph],
    spec: QuerySpec,
    source: Optional[int] = None,
    triangle: bool = False,
    keep_frontier: bool = False,
    budget: Optional[Budget] = None,
    anytime: bool = False,
    checkpoint_path: Optional[Union[str, Path]] = None,
    checkpoint_every: int = 1,
    resume: Optional[Union[Checkpoint, str, Path]] = None,
    completion: bool = True,
) -> TwoPhaseResult:
    """Evaluate ``spec`` from ``source`` via the 2Phase algorithm.

    ``proxy`` is normally a :class:`CoreGraph` but any same-vertex-set
    subgraph (e.g. an Abstraction Graph or Sampled Graph baseline) works —
    the completion phase repairs whatever imprecision the proxy leaves.
    ``triangle`` requires a :class:`CoreGraph` with retained hub values.

    ``budget`` limits span both phases; with ``anytime=True`` an exceeded
    budget degrades to a partial result instead of raising. With
    ``checkpoint_path`` the engine state is snapshotted atomically every
    ``checkpoint_every`` iterations; ``resume`` (a path or loaded
    :class:`~repro.resilience.checkpoint.Checkpoint`) restarts from such a
    snapshot after its fingerprint is verified against this run.

    ``completion=False`` runs the Core Phase to convergence and *sheds*
    the Completion Phase: the result is ``degraded=True`` with a precision
    certificate (and no ``budget_error``) — mostly-precise answers at a
    fraction of the cost, which is how an overloaded service keeps
    responding instead of failing.
    """
    proxy_g = _proxy_graph(proxy)
    if proxy_g.num_vertices != g.num_vertices:
        raise ValueError("proxy graph must share the full graph's vertex set")
    if san_runtime._enabled and isinstance(proxy, CoreGraph):
        san_probes.check_cg_containment(g, proxy, "twophase")

    n = g.num_vertices
    phase1_stats = RunStats()
    phase2_stats = RunStats()

    fingerprint = run_fingerprint(
        g, spec, source=source, triangle=bool(triangle), algorithm="two_phase"
    )
    checkpointer: Optional[Checkpointer] = None
    if checkpoint_path is not None:
        checkpointer = Checkpointer(
            checkpoint_path, every=checkpoint_every,
            fingerprint=fingerprint, engine="two_phase",
        )
    ck: Optional[Checkpoint] = None
    if resume is not None:
        ck = as_checkpoint(resume)
        ck.verify(fingerprint)
        if ck.engine != "two_phase":
            raise ValueError(
                f"checkpoint was written by engine {ck.engine!r}, "
                "not two_phase"
            )
        if not completion and ck.phase == 2:
            raise ValueError(
                "completion=False cannot resume a phase-2 checkpoint"
            )

    if budget is not None:
        budget.begin_run("twophase")

    degraded = False
    budget_error: Optional[BudgetExceeded] = None
    degraded_phase: Optional[int] = None
    phase1_snapshot: Optional[np.ndarray] = None

    if ck is not None and ck.phase == 2:
        # Resume mid-Completion-Phase: the checkpoint carries everything
        # the phase needs; the Core Phase is not re-run (its stats are
        # part of the lost process and reported as zero).
        vals = ck.arrays["vals"].copy()
        frontier2 = ck.arrays["frontier"].copy()
        visited = ck.arrays["visited"].astype(bool).copy()
        blocked = (
            ck.arrays["blocked"].astype(bool)
            if "blocked" in ck.arrays else None
        )
        impacted_size = int(ck.meta.get("impacted", 0))
        certified = int(ck.meta.get("certified", 0))
        start2 = ck.iteration
    else:
        work_cg = symmetric_view(proxy_g) if spec.symmetric else proxy_g
        if ck is not None and ck.phase == 1:
            vals = ck.arrays["vals"].copy()
            frontier = ck.arrays["frontier"].copy()
            start1 = ck.iteration
        else:
            vals = spec.initial_values(n, source)
            frontier = spec.initial_frontier(n, source)
            start1 = 0
        if checkpointer is not None:
            checkpointer.extra_meta = {"phase": 1}
        fault_point("twophase.core.begin")
        try:
            with span("twophase.core", query=spec.name):
                run_push(
                    work_cg, spec, vals, frontier,
                    stats=phase1_stats, keep_frontier=keep_frontier,
                    budget=budget, checkpointer=checkpointer,
                    start_iteration=start1,
                )
        except BudgetExceeded as exc:
            if not anytime:
                raise
            # Degrade from the Core Phase: saturation (and, when the hub
            # data supports it, Theorem 1) still certifies mid-run values
            # because every CG value is achieved by a real path in G.
            blocked = None
            if spec.saturation_value is not None or (
                triangle and isinstance(proxy, CoreGraph)
                and supports_triangle(spec) and not spec.multi_source
            ):
                blocked = _certified_mask(proxy, spec, source, vals, triangle)
            cert = precision_certificate(spec, vals, certified=blocked)
            certified = 0 if blocked is None else int(blocked.sum())
            result = TwoPhaseResult(
                values=vals, phase1=phase1_stats, phase2=phase2_stats,
                impacted=0, certified_precise=certified,
                degraded=True, budget_error=exc, certificate=cert,
                degraded_phase=1,
            )
            _emit_result(spec, source, result, n, None)
            return result
        # The completion phase's output is the full-graph ground truth, so a
        # snapshot of the core-phase values is all the precision measurement
        # needs (one O(n) copy + compare, paid only while tracing).
        phase1_snapshot = (
            vals.copy()
            if obs_runtime._enabled or san_runtime._enabled
            else None
        )

        if spec.multi_source:
            # Initialization impacts every vertex (each starts with its own
            # label), so the completion phase must start from all of them.
            impacted = np.arange(n, dtype=np.int64)
        else:
            impacted = np.flatnonzero(spec.reached(vals))
        impacted_size = int(impacted.size)

        # Reduced(E): remove the incoming edges of provably precise
        # vertices. Lattice saturation (REACH's val == 1) is always
        # available; Theorem 1's hub-distance certificates are the optional
        # triangle optimization.
        blocked = _certified_mask(proxy, spec, source, vals, triangle)
        certified = 0 if blocked is None else int(blocked.sum())

        if not completion:
            # Shed the Completion Phase: the converged Core-Phase values
            # are returned as-is, flagged degraded, with the certificate
            # marking which vertices are nevertheless provably exact.
            cert = precision_certificate(spec, vals, certified=blocked)
            result = TwoPhaseResult(
                values=vals, phase1=phase1_stats, phase2=phase2_stats,
                impacted=impacted_size, certified_precise=certified,
                degraded=True, budget_error=None, certificate=cert,
                degraded_phase=2,
            )
            _emit_result(spec, source, result, n, None)
            return result

        visited = np.zeros(n, dtype=bool)
        visited[impacted] = True
        frontier2 = impacted
        start2 = 0

    work_g = symmetric_view(g) if spec.symmetric else g
    if checkpointer is not None:
        checkpointer.extra_meta = {
            "phase": 2, "impacted": impacted_size, "certified": certified,
        }
        checkpointer.constants = {} if blocked is None else {
            "blocked": blocked
        }
    fault_point("twophase.completion.begin")
    try:
        with span("twophase.completion", query=spec.name):
            run_push(
                work_g, spec, vals, frontier2,
                stats=phase2_stats,
                first_visit=True,
                visited=visited,
                blocked_dst=blocked,
                keep_frontier=keep_frontier,
                budget=budget, checkpointer=checkpointer,
                start_iteration=start2,
            )
    except BudgetExceeded as exc:
        if not anytime:
            raise
        degraded = True
        budget_error = exc
        degraded_phase = 2

    if san_runtime._enabled:
        # The certified vertices' in-edges were dropped from the completion
        # scan, so only this audit can catch a wrong certificate: sampled
        # vertices must already sit at their full-graph fixed point.
        san_probes.audit_certified_fixed_point(
            work_g, spec, vals, blocked, "twophase"
        )
        if obs_runtime._enabled:
            san_probes.audit_metric_names("twophase")
    certificate = precision_certificate(
        spec, vals, certified=blocked, complete=not degraded
    )
    result = TwoPhaseResult(
        values=vals,
        phase1=phase1_stats,
        phase2=phase2_stats,
        impacted=impacted_size,
        certified_precise=certified,
        degraded=degraded,
        budget_error=budget_error,
        certificate=certificate,
        degraded_phase=degraded_phase,
    )
    _emit_result(spec, source, result, n, phase1_snapshot)
    return result


def _emit_result(
    spec: QuerySpec,
    source: Optional[int],
    result: TwoPhaseResult,
    n: int,
    phase1_snapshot: Optional[np.ndarray],
) -> None:
    """Gauges, quality counters, and the ``twophase.result`` journal event."""
    if not obs_runtime._enabled:
        return
    obs_metrics.gauge("twophase.impacted", query=spec.name).set(
        result.impacted
    )
    obs_metrics.gauge("twophase.certified_precise", query=spec.name).set(
        result.certified_precise
    )
    obs_metrics.gauge("twophase.degraded", query=spec.name).set(
        int(result.degraded)
    )
    precise_fraction = None
    if phase1_snapshot is not None and not result.degraded:
        precise_fraction = obs_quality.phase1_precise_fraction(
            spec, phase1_snapshot, result.values
        )
    redundant = (
        result.phase1.redundant_relaxations
        + result.phase2.redundant_relaxations
    )
    obs_quality.record_two_phase(
        query=spec.name,
        num_vertices=n,
        precise_fraction=precise_fraction,
        certified=result.certified_precise,
        edges_skipped=result.phase2.edges_skipped,
        redundant_relaxations=redundant,
    )
    obs_journal.emit(
        {
            "type": "event",
            "name": "twophase.result",
            "query": spec.name,
            "source": None if source is None else int(source),
            "impacted": result.impacted,
            "certified_precise": result.certified_precise,
            "phase1_precise_fraction": precise_fraction,
            "edges_skipped": result.phase2.edges_skipped,
            "redundant_relaxations": redundant,
            "degraded": result.degraded,
            "degraded_phase": result.degraded_phase,
            "budget": (
                None if result.budget_error is None
                else result.budget_error.as_dict()
            ),
            "certificate": (
                None if result.certificate is None
                else certificate_counts(result.certificate)
            ),
            "phase1": result.phase1.to_dict(include_iterations=False),
            "phase2": result.phase2.to_dict(include_iterations=False),
        }
    )
