"""The CoreGraph container: the proxy graph plus its identification metadata.

A core graph keeps every vertex of the original graph and a subset of its
edges — those witnessed to have non-zero betweenness centrality by hub
queries, plus the connectivity edges Algorithm 1 adds. The container also
carries the hub query results (needed by the Theorem 1 triangle-inequality
certificates) and bookkeeping used by the paper's studies (edge-growth curve
for Fig. 3, forward selection counts for Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.graph.csr import Graph


@dataclass
class HubData:
    """Query results for one hub vertex ``h`` on the *full* graph.

    ``forward[v]`` is ``Q(h).Val(v)`` — the property value from ``h`` to
    ``v``; ``backward[v]`` is the value from ``v`` to ``h`` (the query on the
    transpose graph). These are exactly the ``dist(h, ·).G`` / ``dist(·, h).G``
    terms in Theorem 1.
    """

    hub: int
    forward: np.ndarray
    backward: np.ndarray


@dataclass
class CoreGraph:
    """A core graph and the provenance of its edges.

    Attributes
    ----------
    graph:
        The CG itself: same vertex set as the source graph, subset of edges.
    edge_mask:
        Boolean mask over the *source* graph's CSR edge array marking the
        edges included in the CG (centrality + connectivity edges).
    spec_name:
        The query kind the CG was specialized for (``"REACH"`` for the
        general CG shared by REACH and WCC).
    hubs:
        The high-degree vertices whose queries identified the edges.
    hub_data:
        Per-hub forward/backward full-graph query values (empty when the
        builder was asked not to retain them).
    growth:
        ``growth[i]`` = number of centrality edges accumulated after
        processing hubs ``0..i`` (Fig. 3). ``None`` unless tracked.
    forward_selection_counts:
        Per-source-edge count of forward hub queries that selected the edge
        (Table 1). ``None`` unless tracked.
    connectivity_edges:
        Number of edges added by the well-connectedness pass.
    source_num_edges:
        ``|E|`` of the graph the CG was derived from.
    """

    graph: Graph
    edge_mask: np.ndarray
    spec_name: str
    hubs: np.ndarray
    hub_data: List[HubData] = field(default_factory=list)
    growth: Optional[np.ndarray] = None
    forward_selection_counts: Optional[np.ndarray] = None
    connectivity_edges: int = 0
    source_num_edges: int = 0

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def edge_fraction(self) -> float:
        """Fraction of the source graph's edges retained (Table 4 metric)."""
        if self.source_num_edges == 0:
            return 0.0
        return self.num_edges / self.source_num_edges

    def __repr__(self) -> str:
        pct = 100.0 * self.edge_fraction
        return (
            f"CoreGraph(spec={self.spec_name}, edges={self.num_edges} "
            f"[{pct:.2f}% of {self.source_num_edges}], hubs={len(self.hubs)})"
        )
