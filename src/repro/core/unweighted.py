"""General core graph for unweighted queries (Algorithm 2).

Reachability-class queries (REACH, WCC) only need the BFS-tree structure of
the graph, so the core graph is built from forward and backward breadth-first
traversals of the hub vertices. The ``Qid`` labels implement the paper's
edge-sharing optimization: a vertex first discovered by query ``s`` keeps
``Qid = s``; when a later query ``s'`` reaches it, the connecting edge is
added but the traversal does not continue past it — the earlier query's
subtree is reused, keeping the core graph small.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.checks.sanitize import probes as san_probes
from repro.checks.sanitize import runtime as san_runtime
from repro.core.connectivity import add_connectivity_edges
from repro.core.coregraph import CoreGraph
from repro.core.identify import DEFAULT_NUM_HUBS
from repro.engines.frontier import ragged_gather
from repro.graph.csr import Graph
from repro.graph.degree import top_degree_vertices
from repro.graph.transform import edge_subgraph, reverse_edge_permutation
from repro.obs import journal as obs_journal
from repro.obs import quality as obs_quality
from repro.obs import runtime as obs_runtime
from repro.obs.spans import span
from repro.queries.base import QuerySpec
from repro.queries.specs import REACH


def _qid_traverse(
    graph: Graph, source: int, s_id: int, qid: np.ndarray, edge_mask: np.ndarray
) -> None:
    """One level-synchronous traversal of Algorithm 2's ``Traverse``.

    Marks added edges in ``edge_mask`` (indices into ``graph``'s CSR arrays)
    and updates ``qid`` in place. Faithful to the FIFO algorithm: an edge
    ``u -> v`` is added whenever ``Qid(v) != s``; ``v`` is pushed (and
    labelled) only when ``Qid(v) == 0``, and only the first edge reaching an
    unlabelled ``v`` within a level is added.
    """
    if qid[source] == 0:
        qid[source] = s_id
    frontier = np.asarray([source], dtype=np.int64)
    while frontier.size:
        edge_idx, _ = ragged_gather(graph.offsets, frontier)
        if edge_idx.size == 0:
            break
        v = graph.dst[edge_idx]
        qv = qid[v]
        foreign = (qv != s_id) & (qv != 0)
        edge_mask[edge_idx[foreign]] = True
        unlabelled = qv == 0
        v_new = v[unlabelled]
        if v_new.size:
            uniq_v, first_pos = np.unique(v_new, return_index=True)
            edge_mask[edge_idx[unlabelled][first_pos]] = True
            qid[uniq_v] = s_id
            frontier = uniq_v
        else:
            frontier = np.empty(0, dtype=np.int64)


def build_unweighted_core_graph(
    g: Graph,
    num_hubs: int = DEFAULT_NUM_HUBS,
    hubs: Optional[Sequence[int]] = None,
    connectivity: bool = True,
    track_growth: bool = False,
    spec: QuerySpec = REACH,
    budget=None,
    progress=None,
) -> CoreGraph:
    """Algorithm 2: the general core graph serving REACH and WCC.

    Forward traversals run on ``g`` and mark edges directly; backward
    traversals run on ``G^T`` and their edges are mapped back to the forward
    orientation (``E_C = E_f ∪ Reverse(E_b)``).

    ``budget`` / ``progress`` behave as in
    :func:`repro.core.identify.build_core_graph`: the deadline is checked
    before each hub traversal and ``progress(done, total)`` fires after it.
    """
    if hubs is None:
        hub_arr = top_degree_vertices(g, num_hubs)
    else:
        hub_arr = np.asarray(list(hubs), dtype=np.int64)
    grev = g.reverse()
    perm = reverse_edge_permutation(g)

    fw_mask = np.zeros(g.num_edges, dtype=bool)
    bw_mask = np.zeros(g.num_edges, dtype=bool)
    fw_qid = np.zeros(g.num_vertices, dtype=np.int64)
    bw_qid = np.zeros(g.num_vertices, dtype=np.int64)
    growth = [] if track_growth else None

    build_span = span("cg.build", algorithm="unweighted", query=spec.name,
                      num_hubs=len(hub_arr))
    with build_span:
        for i, h in enumerate(hub_arr):
            s_id = i + 1  # 0 is the "unvisited" label
            if budget is not None:
                budget.check_deadline("cg.build")
            with span("cg.hub_traverse", hub=int(h)):
                _qid_traverse(g, int(h), s_id, fw_qid, fw_mask)
                _qid_traverse(grev, int(h), s_id, bw_qid, bw_mask)
            if growth is not None:
                combined = fw_mask.copy()
                combined[perm[np.flatnonzero(bw_mask)]] = True
                growth.append(int(combined.sum()))
            if progress is not None:
                progress(i + 1, len(hub_arr))

        mask = fw_mask
        mask[perm[np.flatnonzero(bw_mask)]] = True

        connectivity_added = 0
        if connectivity:
            with span("cg.connectivity"):
                connectivity_added = add_connectivity_edges(g, mask, spec)

    if obs_runtime._enabled:
        core_edges = int(mask.sum())
        fraction = obs_quality.record_cg_build(
            algorithm="unweighted",
            query=spec.name,
            core_edges=core_edges,
            source_edges=int(g.num_edges),
            connectivity_edges=connectivity_added,
        )
        obs_journal.emit(
            {
                "type": "event",
                "name": "cg.built",
                "algorithm": "unweighted",
                "query": spec.name,
                "num_hubs": len(hub_arr),
                "core_edges": core_edges,
                "source_edges": int(g.num_edges),
                "edge_fraction": fraction,
                "connectivity_edges": connectivity_added,
            }
        )

    cg = CoreGraph(
        graph=edge_subgraph(g, mask),
        edge_mask=mask,
        spec_name=spec.name,
        hubs=hub_arr,
        hub_data=[],
        growth=None if growth is None else np.asarray(growth, dtype=np.int64),
        forward_selection_counts=None,
        connectivity_edges=connectivity_added,
        source_num_edges=g.num_edges,
    )
    if san_runtime._enabled:
        san_probes.check_cg_containment(g, cg, "cg.build")
    return cg
