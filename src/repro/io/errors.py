"""Typed IO failures for persisted graph artifacts.

Loaders validate magic bytes, format versions, header fields, and payload
lengths up front and raise :class:`CorruptGraphError` — carrying the file
path and, when known, the byte offset of the damage — instead of letting a
numpy/zipfile traceback surface from deep inside a decoder. It subclasses
``ValueError`` so pre-existing ``except ValueError`` call sites and tests
keep working.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union


class CorruptGraphError(ValueError):
    """A persisted graph/CG artifact failed validation while loading.

    Attributes
    ----------
    path:
        The file being read, when the decode ran against a file (None for
        in-memory blobs).
    offset:
        Byte offset of the damage when the decoder can localize it.
    """

    def __init__(
        self,
        message: str,
        path: Optional[Union[str, Path]] = None,
        offset: Optional[int] = None,
    ) -> None:
        detail = message
        if path is not None:
            detail += f" [file: {path}]"
        if offset is not None:
            detail += f" [offset: {offset}]"
        super().__init__(detail)
        self.path = None if path is None else str(path)
        self.offset = offset
