"""Disk-backed artifact cache for expensive build products.

Core-graph identification is a one-time cost per (graph, query kind); this
cache persists the products under a directory keyed by a caller-supplied
name, so repeated benchmark/CLI runs across processes skip rebuilding.

Reads go through :func:`repro.resilience.retry.retry_call` (cache
directories commonly live on network filesystems where transient ``OSError``
is routine); writes are atomic via :mod:`repro.io.binary`, so concurrent
processes warming the same cache see either nothing or a complete artifact.

Within one process the cache is also thread-safe: a per-instance lock
serializes the exists-check/build/write/evict sequence, so concurrent
service workers can share one :class:`ArtifactCache` without interleaving
a read against an eviction or double-building the same key.
"""

from __future__ import annotations

import json
import re
import threading
from pathlib import Path
from typing import Callable, Optional, Union

from repro.core.coregraph import CoreGraph
from repro.graph.csr import Graph
from repro.io.binary import (
    load_core_graph,
    load_graph,
    save_core_graph,
    save_graph,
)
from repro.resilience.atomic import atomic_write_text
from repro.resilience.faults import fault_point
from repro.resilience.retry import retry_call

_KEY_RE = re.compile(r"[^A-Za-z0-9._-]+")


def _sanitize(key: str) -> str:
    clean = _KEY_RE.sub("_", key)
    if not clean.strip("_.-"):
        raise ValueError(f"unusable cache key {key!r}")
    return clean


class ArtifactCache:
    """Named graph/core-graph artifacts under one directory.

    Example::

        cache = ArtifactCache("~/.cache/repro")
        g = cache.graph("fr", lambda: load_zoo_graph("FR"))
        cg = cache.core_graph("fr-sssp", lambda: build_core_graph(g, SSSP))
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        # Serializes check/build/write/evict against concurrent workers.
        self._lock = threading.RLock()

    def _path(self, kind: str, key: str) -> Path:
        return self.root / f"{kind}-{_sanitize(key)}.npz"

    # ------------------------------------------------------------------
    def graph(self, key: str, build: Callable[[], Graph]) -> Graph:
        """Return the cached graph for ``key``, building it on first use."""
        path = self._path("graph", key)
        with self._lock:
            if path.exists():
                def _read() -> Graph:
                    # Inside the retried callable so injected transient IO
                    # errors exercise the same recovery as real ones; the
                    # cache lock stays held because the build-vs-read race
                    # is exactly what this cache serializes.
                    fault_point("artifacts.read")  # repro: noqa RC104 — cache
                    return load_graph(path)

                return retry_call(_read, label="artifact.graph")
            g = build()
            save_graph(g, path)
            return g

    def core_graph(
        self, key: str, build: Callable[[], CoreGraph]
    ) -> CoreGraph:
        """Return the cached core graph for ``key``."""
        path = self._path("cg", key)
        with self._lock:
            if path.exists():
                def _read() -> CoreGraph:
                    # Same retried-read-under-the-cache-lock shape as
                    # graph() above, and serialized for the same reason.
                    fault_point("artifacts.read")  # repro: noqa RC104 — cache
                    return load_core_graph(path)

                return retry_call(_read, label="artifact.cg")
            cg = build()
            save_core_graph(cg, path)
            return cg

    # ------------------------------------------------------------------
    def contains(self, kind: str, key: str) -> bool:
        with self._lock:
            return self._path(kind, key).exists()

    def invalidate(self, kind: Optional[str] = None, key: Optional[str] = None) -> int:
        """Delete matching artifacts; returns how many were removed."""
        pattern = f"{kind or '*'}-{_sanitize(key) if key else '*'}.npz"
        removed = 0
        with self._lock:
            for path in self.root.glob(pattern):
                path.unlink()
                removed += 1
        return removed

    def manifest(self) -> dict:
        """Names and sizes of everything cached (for diagnostics)."""
        with self._lock:
            return {
                p.name: p.stat().st_size
                for p in sorted(self.root.glob("*.npz"))
            }

    def write_manifest(self) -> Path:
        path = self.root / "manifest.json"
        atomic_write_text(path, json.dumps(self.manifest(), indent=2))
        return path
