"""Compressed adjacency storage: byte-aligned varint delta encoding.

Ligra+ (and many out-of-core systems) store each vertex's sorted adjacency
list as deltas — first the gap to the vertex's own id, then successive
gaps — each written as a variable-length base-128 integer. Power-law
graphs compress well because most gaps are small. This module implements
the codec over numpy CSR graphs (weights, when present, are quantized to
IEEE doubles and stored raw — the ids are where the redundancy lives).

The decoder is vectorized enough for test-scale graphs; this is a storage
substrate, not a high-performance path.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

from repro.graph.builder import from_arrays
from repro.graph.csr import Graph
from repro.io.errors import CorruptGraphError
from repro.resilience.atomic import atomic_write_bytes
from repro.resilience.faults import fault_point

_MAGIC = b"RPRC"
_VERSION = 1
_HEADER_LEN = 32  # magic 4 + version 2 + weighted 2 + n 8 + m 8 + payload 8


def encode_varints(values: np.ndarray) -> bytes:
    """Encode non-negative integers as base-128 varints (LEB128)."""
    values = np.asarray(values, dtype=np.uint64)
    if values.size == 0:
        return b""
    out = bytearray()
    for v in values.tolist():
        while True:
            byte = v & 0x7F
            v >>= 7
            if v:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def decode_varints(data: bytes, count: int) -> np.ndarray:
    """Decode ``count`` varints from ``data``."""
    out = np.empty(count, dtype=np.uint64)
    pos = 0
    for i in range(count):
        result = 0
        shift = 0
        while True:
            if pos >= len(data):
                raise ValueError("truncated varint stream")
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        out[i] = result
    if pos != len(data):
        raise ValueError("trailing bytes after varint stream")
    return out


def _zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed deltas to unsigned (0,-1,1,-2 -> 0,1,2,3)."""
    values = np.asarray(values, dtype=np.int64)
    return ((values << 1) ^ (values >> 63)).astype(np.uint64)


def _zigzag_decode(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=np.uint64)
    return ((values >> 1).astype(np.int64)) ^ -(
        (values & 1).astype(np.int64)
    )


@dataclass
class CompressionReport:
    """Size accounting of one compressed graph file."""

    raw_bytes: int
    compressed_bytes: int

    @property
    def ratio(self) -> float:
        if self.compressed_bytes == 0:
            return 1.0
        return self.raw_bytes / self.compressed_bytes


def compress_graph(g: Graph) -> bytes:
    """Serialize ``g`` with delta/varint-encoded adjacency ids."""
    # Sort each adjacency list so gaps are non-negative after the first.
    src = g.edge_sources()
    order = np.lexsort((g.dst, src))
    dst = g.dst[order]
    weights = None if g.weights is None else g.weights[order]
    degs = np.diff(g.offsets)

    deltas = np.empty(g.num_edges, dtype=np.int64)
    pos = 0
    for u in range(g.num_vertices):
        d = int(degs[u])
        if d == 0:
            continue
        adj = dst[pos:pos + d]
        deltas[pos] = adj[0] - u          # may be negative: zigzag
        deltas[pos + 1:pos + d] = np.diff(adj)  # non-negative (sorted)
        pos += d
    payload = encode_varints(_zigzag_encode(deltas))

    header = bytearray()
    header += _MAGIC
    header += int(_VERSION).to_bytes(2, "little")
    header += int(1 if g.is_weighted else 0).to_bytes(2, "little")
    header += int(g.num_vertices).to_bytes(8, "little")
    header += int(g.num_edges).to_bytes(8, "little")
    header += int(len(payload)).to_bytes(8, "little")
    blob = bytes(header) + degs.astype(np.uint32).tobytes() + payload
    if weights is not None:
        blob += weights.astype(np.float64).tobytes()
    return blob


def decompress_graph(blob: bytes, path: Union[str, Path, None] = None) -> Graph:
    """Inverse of :func:`compress_graph`.

    Validates the header (magic, version, section lengths against the blob
    size) before touching the payload, raising
    :class:`~repro.io.errors.CorruptGraphError` with the damaged byte
    offset rather than a numpy traceback; ``path`` (set by
    :func:`load_compressed`) is carried into the error.
    """
    if len(blob) < _HEADER_LEN:
        raise CorruptGraphError(
            f"truncated header: {len(blob)} bytes < {_HEADER_LEN}",
            path=path, offset=len(blob),
        )
    if blob[:4] != _MAGIC:
        raise CorruptGraphError(
            f"not a compressed graph blob (magic {blob[:4]!r} != {_MAGIC!r})",
            path=path, offset=0,
        )
    version = int.from_bytes(blob[4:6], "little")
    if version != _VERSION:
        raise CorruptGraphError(
            f"unsupported format version {version}", path=path, offset=4
        )
    weighted = bool(int.from_bytes(blob[6:8], "little"))
    n = int.from_bytes(blob[8:16], "little")
    m = int.from_bytes(blob[16:24], "little")
    payload_len = int.from_bytes(blob[24:32], "little")
    expected = _HEADER_LEN + 4 * n + payload_len + (8 * m if weighted else 0)
    if len(blob) < expected:
        raise CorruptGraphError(
            f"truncated blob: header promises {expected} bytes, "
            f"got {len(blob)}",
            path=path, offset=len(blob),
        )
    pos = _HEADER_LEN
    degs = np.frombuffer(blob[pos:pos + 4 * n], dtype=np.uint32).astype(
        np.int64
    )
    if int(degs.sum()) != m:
        raise CorruptGraphError(
            f"degree table sums to {int(degs.sum())}, header says m={m}",
            path=path, offset=pos,
        )
    pos += 4 * n
    payload = blob[pos:pos + payload_len]
    try:
        deltas = _zigzag_decode(decode_varints(payload, m))
    except ValueError as exc:
        raise CorruptGraphError(
            f"corrupt adjacency payload: {exc}", path=path, offset=pos
        ) from exc
    pos += payload_len

    dst = np.empty(m, dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), degs)
    cursor = 0
    for u in range(n):
        d = int(degs[u])
        if d == 0:
            continue
        adj = np.cumsum(deltas[cursor:cursor + d]) + u
        dst[cursor:cursor + d] = adj
        cursor += d
    if m and (dst.min() < 0 or dst.max() >= n):
        raise CorruptGraphError(
            f"decoded destination ids outside [0, {n})", path=path
        )
    weights = None
    if weighted:
        weights = np.frombuffer(blob[pos:pos + 8 * m], dtype=np.float64)
        pos += 8 * m
    if pos != len(blob):
        raise CorruptGraphError(
            "trailing bytes in compressed graph blob", path=path, offset=pos
        )
    return from_arrays(n, src, dst, weights)


def save_compressed(g: Graph, path: Union[str, Path]) -> CompressionReport:
    """Write the compressed form; returns the size accounting."""
    blob = compress_graph(g)
    atomic_write_bytes(path, blob)
    # Raw CSR: 4-byte destination ids, 8-byte float64 weights (when
    # present), 8-byte offsets — what the uncompressed layout stores.
    per_edge = 4 + (8 if g.is_weighted else 0)
    raw = g.num_edges * per_edge + 8 * (g.num_vertices + 1)
    return CompressionReport(raw_bytes=raw, compressed_bytes=len(blob))


def load_compressed(path: Union[str, Path]) -> Graph:
    fault_point("io.load")
    return decompress_graph(Path(path).read_bytes(), path=path)
