"""Compressed adjacency storage: byte-aligned varint delta encoding.

Ligra+ (and many out-of-core systems) store each vertex's sorted adjacency
list as deltas — first the gap to the vertex's own id, then successive
gaps — each written as a variable-length base-128 integer. Power-law
graphs compress well because most gaps are small. This module implements
the codec over numpy CSR graphs (weights, when present, are quantized to
IEEE doubles and stored raw — the ids are where the redundancy lives).

The decoder is vectorized enough for test-scale graphs; this is a storage
substrate, not a high-performance path.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

from repro.graph.builder import from_arrays
from repro.graph.csr import Graph

_MAGIC = b"RPRC"
_VERSION = 1


def encode_varints(values: np.ndarray) -> bytes:
    """Encode non-negative integers as base-128 varints (LEB128)."""
    values = np.asarray(values, dtype=np.uint64)
    if values.size == 0:
        return b""
    out = bytearray()
    for v in values.tolist():
        while True:
            byte = v & 0x7F
            v >>= 7
            if v:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def decode_varints(data: bytes, count: int) -> np.ndarray:
    """Decode ``count`` varints from ``data``."""
    out = np.empty(count, dtype=np.uint64)
    pos = 0
    for i in range(count):
        result = 0
        shift = 0
        while True:
            if pos >= len(data):
                raise ValueError("truncated varint stream")
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        out[i] = result
    if pos != len(data):
        raise ValueError("trailing bytes after varint stream")
    return out


def _zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed deltas to unsigned (0,-1,1,-2 -> 0,1,2,3)."""
    values = np.asarray(values, dtype=np.int64)
    return ((values << 1) ^ (values >> 63)).astype(np.uint64)


def _zigzag_decode(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=np.uint64)
    return ((values >> 1).astype(np.int64)) ^ -(
        (values & 1).astype(np.int64)
    )


@dataclass
class CompressionReport:
    """Size accounting of one compressed graph file."""

    raw_bytes: int
    compressed_bytes: int

    @property
    def ratio(self) -> float:
        if self.compressed_bytes == 0:
            return 1.0
        return self.raw_bytes / self.compressed_bytes


def compress_graph(g: Graph) -> bytes:
    """Serialize ``g`` with delta/varint-encoded adjacency ids."""
    # Sort each adjacency list so gaps are non-negative after the first.
    src = g.edge_sources()
    order = np.lexsort((g.dst, src))
    dst = g.dst[order]
    weights = None if g.weights is None else g.weights[order]
    degs = np.diff(g.offsets)

    deltas = np.empty(g.num_edges, dtype=np.int64)
    pos = 0
    for u in range(g.num_vertices):
        d = int(degs[u])
        if d == 0:
            continue
        adj = dst[pos:pos + d]
        deltas[pos] = adj[0] - u          # may be negative: zigzag
        deltas[pos + 1:pos + d] = np.diff(adj)  # non-negative (sorted)
        pos += d
    payload = encode_varints(_zigzag_encode(deltas))

    header = bytearray()
    header += _MAGIC
    header += int(_VERSION).to_bytes(2, "little")
    header += int(1 if g.is_weighted else 0).to_bytes(2, "little")
    header += int(g.num_vertices).to_bytes(8, "little")
    header += int(g.num_edges).to_bytes(8, "little")
    header += int(len(payload)).to_bytes(8, "little")
    blob = bytes(header) + degs.astype(np.uint32).tobytes() + payload
    if weights is not None:
        blob += weights.astype(np.float64).tobytes()
    return blob


def decompress_graph(blob: bytes) -> Graph:
    """Inverse of :func:`compress_graph`."""
    if blob[:4] != _MAGIC:
        raise ValueError("not a compressed graph blob")
    version = int.from_bytes(blob[4:6], "little")
    if version != _VERSION:
        raise ValueError(f"unsupported version {version}")
    weighted = bool(int.from_bytes(blob[6:8], "little"))
    n = int.from_bytes(blob[8:16], "little")
    m = int.from_bytes(blob[16:24], "little")
    payload_len = int.from_bytes(blob[24:32], "little")
    pos = 32
    degs = np.frombuffer(blob[pos:pos + 4 * n], dtype=np.uint32).astype(
        np.int64
    )
    pos += 4 * n
    payload = blob[pos:pos + payload_len]
    pos += payload_len
    deltas = _zigzag_decode(decode_varints(payload, m))

    dst = np.empty(m, dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), degs)
    cursor = 0
    for u in range(n):
        d = int(degs[u])
        if d == 0:
            continue
        adj = np.cumsum(deltas[cursor:cursor + d]) + u
        dst[cursor:cursor + d] = adj
        cursor += d
    weights = None
    if weighted:
        weights = np.frombuffer(blob[pos:pos + 8 * m], dtype=np.float64)
        pos += 8 * m
    if pos != len(blob):
        raise ValueError("trailing bytes in compressed graph blob")
    return from_arrays(n, src, dst, weights)


def save_compressed(g: Graph, path: Union[str, Path]) -> CompressionReport:
    """Write the compressed form; returns the size accounting."""
    blob = compress_graph(g)
    Path(path).write_bytes(blob)
    # Raw CSR: 4-byte destination ids, 8-byte float64 weights (when
    # present), 8-byte offsets — what the uncompressed layout stores.
    per_edge = 4 + (8 if g.is_weighted else 0)
    raw = g.num_edges * per_edge + 8 * (g.num_vertices + 1)
    return CompressionReport(raw_bytes=raw, compressed_bytes=len(blob))


def load_compressed(path: Union[str, Path]) -> Graph:
    return decompress_graph(Path(path).read_bytes())
