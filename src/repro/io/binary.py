"""Binary (npz) serialization of graphs and core graphs.

CSR arrays round-trip losslessly through ``numpy.savez_compressed``; core
graphs additionally persist their identification metadata (edge mask, hubs,
hub query values) so a CG built once can serve later processes — the
paper's "identified once ... used to evaluate all future queries" economics
across process boundaries.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.core.coregraph import CoreGraph, HubData
from repro.graph.csr import Graph
from repro.graph.validate import validate_graph

_GRAPH_FORMAT = 1
_CG_FORMAT = 1

PathLike = Union[str, Path]


def save_graph(g: Graph, path: PathLike) -> Path:
    """Write ``g`` to ``path`` (npz). Returns the path written."""
    path = Path(path)
    payload = {
        "format": np.int64(_GRAPH_FORMAT),
        "offsets": g.offsets,
        "dst": g.dst,
    }
    if g.weights is not None:
        payload["weights"] = g.weights
    np.savez_compressed(path, **payload)
    # numpy appends .npz when missing; normalize the returned path
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz"
    )


def load_graph(path: PathLike, validate: bool = True) -> Graph:
    """Read a graph written by :func:`save_graph`."""
    with np.load(Path(path)) as data:
        fmt = int(data["format"])
        if fmt != _GRAPH_FORMAT:
            raise ValueError(f"unsupported graph format {fmt}")
        weights = data["weights"] if "weights" in data.files else None
        g = Graph(data["offsets"], data["dst"], weights)
    if validate:
        report = validate_graph(g)
        if not report.ok:
            raise ValueError(f"corrupt graph file {path}: {report.errors}")
    return g


def save_core_graph(cg: CoreGraph, path: PathLike) -> Path:
    """Write a :class:`CoreGraph` (graph + identification metadata)."""
    path = Path(path)
    payload = {
        "format": np.int64(_CG_FORMAT),
        "offsets": cg.graph.offsets,
        "dst": cg.graph.dst,
        "edge_mask": cg.edge_mask,
        "hubs": cg.hubs,
        "spec_name": np.array(cg.spec_name),
        "connectivity_edges": np.int64(cg.connectivity_edges),
        "source_num_edges": np.int64(cg.source_num_edges),
        "num_hub_data": np.int64(len(cg.hub_data)),
    }
    if cg.graph.weights is not None:
        payload["weights"] = cg.graph.weights
    if cg.growth is not None:
        payload["growth"] = cg.growth
    if cg.forward_selection_counts is not None:
        payload["selection_counts"] = cg.forward_selection_counts
    for i, hd in enumerate(cg.hub_data):
        payload[f"hub_{i}_id"] = np.int64(hd.hub)
        payload[f"hub_{i}_forward"] = hd.forward
        payload[f"hub_{i}_backward"] = hd.backward
    np.savez_compressed(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz"
    )


def load_core_graph(path: PathLike) -> CoreGraph:
    """Read a core graph written by :func:`save_core_graph`."""
    with np.load(Path(path)) as data:
        fmt = int(data["format"])
        if fmt != _CG_FORMAT:
            raise ValueError(f"unsupported core-graph format {fmt}")
        weights = data["weights"] if "weights" in data.files else None
        graph = Graph(data["offsets"], data["dst"], weights)
        hub_data = []
        for i in range(int(data["num_hub_data"])):
            hub_data.append(
                HubData(
                    hub=int(data[f"hub_{i}_id"]),
                    forward=data[f"hub_{i}_forward"],
                    backward=data[f"hub_{i}_backward"],
                )
            )
        return CoreGraph(
            graph=graph,
            edge_mask=data["edge_mask"],
            spec_name=str(data["spec_name"]),
            hubs=data["hubs"],
            hub_data=hub_data,
            growth=data["growth"] if "growth" in data.files else None,
            forward_selection_counts=(
                data["selection_counts"]
                if "selection_counts" in data.files
                else None
            ),
            connectivity_edges=int(data["connectivity_edges"]),
            source_num_edges=int(data["source_num_edges"]),
        )
