"""Binary (npz) serialization of graphs and core graphs.

CSR arrays round-trip losslessly through ``numpy.savez_compressed``; core
graphs additionally persist their identification metadata (edge mask, hubs,
hub query values) so a CG built once can serve later processes — the
paper's "identified once ... used to evaluate all future queries" economics
across process boundaries.

Writes are atomic (temp file + rename) so a killed ``build --out`` never
leaves a truncated artifact; loads validate format version and required
keys and raise :class:`~repro.io.errors.CorruptGraphError` (a
``ValueError``) naming the file instead of surfacing a numpy/zipfile
traceback.
"""

from __future__ import annotations

import zipfile
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.coregraph import CoreGraph, HubData
from repro.graph.csr import Graph
from repro.graph.validate import validate_graph
from repro.io.errors import CorruptGraphError
from repro.resilience.atomic import atomic_path
from repro.resilience.faults import fault_point

_GRAPH_FORMAT = 1
_CG_FORMAT = 1

PathLike = Union[str, Path]


def _npz_path(path: PathLike) -> Path:
    """Normalize to the ``.npz`` name ``numpy.savez`` would produce."""
    path = Path(path)
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz"
    )


def _open_npz(path: Path, kind: str):
    """``np.load`` with decode failures mapped to :class:`CorruptGraphError`."""
    fault_point("io.load")
    try:
        return np.load(path)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError, EOFError) as exc:
        raise CorruptGraphError(
            f"not a readable {kind} npz archive: {exc}", path=path
        ) from exc


def _require_keys(data, keys, path: Path, kind: str) -> None:
    missing = [k for k in keys if k not in data.files]
    if missing:
        raise CorruptGraphError(
            f"{kind} archive is missing required keys {missing}", path=path
        )


def save_graph(g: Graph, path: PathLike) -> Path:
    """Write ``g`` to ``path`` (npz, atomic). Returns the path written."""
    payload = {
        "format": np.int64(_GRAPH_FORMAT),
        "offsets": g.offsets,
        "dst": g.dst,
    }
    if g.weights is not None:
        payload["weights"] = g.weights
    final = _npz_path(path)
    with atomic_path(final, suffix=".npz") as tmp:
        np.savez_compressed(tmp, **payload)
    return final


def load_graph(path: PathLike, validate: bool = True) -> Graph:
    """Read a graph written by :func:`save_graph`."""
    path = Path(path)
    with _open_npz(path, "graph") as data:
        _require_keys(data, ("format", "offsets", "dst"), path, "graph")
        fmt = int(data["format"])
        if fmt != _GRAPH_FORMAT:
            raise CorruptGraphError(
                f"unsupported graph format {fmt}", path=path
            )
        weights = data["weights"] if "weights" in data.files else None
        try:
            g = Graph(data["offsets"], data["dst"], weights)
        except ValueError as exc:
            raise CorruptGraphError(
                f"corrupt graph arrays: {exc}", path=path
            ) from exc
    if validate:
        report = validate_graph(g)
        if not report.ok:
            raise CorruptGraphError(
                f"corrupt graph file: {report.errors}", path=path
            )
    return g


def save_core_graph(cg: CoreGraph, path: PathLike) -> Path:
    """Write a :class:`CoreGraph` (graph + identification metadata, atomic)."""
    payload = {
        "format": np.int64(_CG_FORMAT),
        "offsets": cg.graph.offsets,
        "dst": cg.graph.dst,
        "edge_mask": cg.edge_mask,
        "hubs": cg.hubs,
        "spec_name": np.array(cg.spec_name),
        "connectivity_edges": np.int64(cg.connectivity_edges),
        "source_num_edges": np.int64(cg.source_num_edges),
        "num_hub_data": np.int64(len(cg.hub_data)),
    }
    if cg.graph.weights is not None:
        payload["weights"] = cg.graph.weights
    if cg.growth is not None:
        payload["growth"] = cg.growth
    if cg.forward_selection_counts is not None:
        payload["selection_counts"] = cg.forward_selection_counts
    for i, hd in enumerate(cg.hub_data):
        payload[f"hub_{i}_id"] = np.int64(hd.hub)
        payload[f"hub_{i}_forward"] = hd.forward
        payload[f"hub_{i}_backward"] = hd.backward
    final = _npz_path(path)
    with atomic_path(final, suffix=".npz") as tmp:
        np.savez_compressed(tmp, **payload)
    return final


def load_core_graph(path: PathLike) -> CoreGraph:
    """Read a core graph written by :func:`save_core_graph`."""
    path = Path(path)
    with _open_npz(path, "core-graph") as data:
        _require_keys(
            data,
            ("format", "offsets", "dst", "edge_mask", "hubs", "spec_name",
             "connectivity_edges", "source_num_edges", "num_hub_data"),
            path, "core-graph",
        )
        fmt = int(data["format"])
        if fmt != _CG_FORMAT:
            raise CorruptGraphError(
                f"unsupported core-graph format {fmt}", path=path
            )
        weights = data["weights"] if "weights" in data.files else None
        try:
            graph = Graph(data["offsets"], data["dst"], weights)
        except ValueError as exc:
            raise CorruptGraphError(
                f"corrupt core-graph arrays: {exc}", path=path
            ) from exc
        num_hub_data = int(data["num_hub_data"])
        hub_keys = [
            key for i in range(num_hub_data)
            for key in (f"hub_{i}_id", f"hub_{i}_forward", f"hub_{i}_backward")
        ]
        _require_keys(data, hub_keys, path, "core-graph")
        hub_data = []
        for i in range(num_hub_data):
            hub_data.append(
                HubData(
                    hub=int(data[f"hub_{i}_id"]),
                    forward=data[f"hub_{i}_forward"],
                    backward=data[f"hub_{i}_backward"],
                )
            )
        return CoreGraph(
            graph=graph,
            edge_mask=data["edge_mask"],
            spec_name=str(data["spec_name"]),
            hubs=data["hubs"],
            hub_data=hub_data,
            growth=data["growth"] if "growth" in data.files else None,
            forward_selection_counts=(
                data["selection_counts"]
                if "selection_counts" in data.files
                else None
            ),
            connectivity_edges=int(data["connectivity_edges"]),
            source_num_edges=int(data["source_num_edges"]),
        )
