"""Binary persistence for graphs and core graphs, plus an artifact cache."""

from repro.io.binary import save_graph, load_graph, save_core_graph, load_core_graph
from repro.io.artifacts import ArtifactCache
from repro.io.compressed import (
    save_compressed,
    load_compressed,
    compress_graph,
    decompress_graph,
    CompressionReport,
)
from repro.io.errors import CorruptGraphError

__all__ = [
    "CorruptGraphError",
    "save_graph",
    "load_graph",
    "save_core_graph",
    "load_core_graph",
    "ArtifactCache",
    "save_compressed",
    "load_compressed",
    "compress_graph",
    "decompress_graph",
    "CompressionReport",
]
