"""Per-request explain records: ``EXPLAIN ANALYZE`` for graph queries.

An :class:`ExplainRecord` is one wide event aggregating everything the
service learned about a single request across its lifecycle — admission
decision, queue wait, budget consumption, breaker state at execution,
per-phase work breakdown from the engines, the CG-vs-full-graph edge
ratio the Core Phase exploited, the Theorem-1 certified fraction, and the
degraded/shed reason if any. It is built in
:meth:`~repro.serve.service.QueryService._resolve` (the single place
every request terminates), journaled as a ``serve.explain`` event, and
attached to the request's retained trace in the
:class:`~repro.obs.trace.TraceStore`, so ``obs explain <trace-id>``
answers "why was *this* query slow/degraded/shed?" from one line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.serve.request import Outcome, QueryRequest

_CERT_LABELS = {0: "exact", 1: "approx", 2: "unreached"}


def _phase_breakdown(stats: Any) -> Dict[str, Any]:
    """The explain-facing slice of one phase's RunStats."""
    return {
        "wall_ms": round(float(stats.wall_time) * 1000.0, 3),
        "iterations": int(stats.iterations),
        "edges_processed": int(stats.edges_processed),
        "updates": int(stats.updates),
    }


def certificate_summary(certificate: Any) -> Optional[Dict[str, int]]:
    """Per-class counts of a per-vertex precision certificate array."""
    if certificate is None:
        return None
    out: Dict[str, int] = {}
    for code, label in _CERT_LABELS.items():
        out[label] = int((certificate == code).sum())
    return out


@dataclass
class ExplainRecord:
    """The wide per-request event (see module docstring)."""

    trace_id: Optional[str]
    request_id: int
    query: str
    source: Optional[int]
    priority: int
    status: str
    reason: Optional[str] = None
    error: Optional[str] = None
    admitted: bool = False
    attempts: int = 0
    shed: bool = False
    queue_wait_ms: float = 0.0
    service_ms: float = 0.0
    deadline_s: Optional[float] = None
    budget: Optional[Dict[str, Any]] = None
    breaker_state: Optional[str] = None
    phase1: Optional[Dict[str, Any]] = None
    phase2: Optional[Dict[str, Any]] = None
    impacted: Optional[int] = None
    certified_precise: Optional[int] = None
    certified_fraction: Optional[float] = None
    certificate: Optional[Dict[str, int]] = None
    degraded_phase: Optional[int] = None
    cg_edge_fraction: Optional[float] = None
    hubs: Optional[int] = None
    sampled: Optional[bool] = None
    sample_reason: Optional[str] = None
    graph_epoch: Optional[int] = None
    graph_fingerprint: Optional[str] = None
    staleness: Optional[Dict[str, Any]] = None
    durability: Optional[Dict[str, Any]] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form; None-valued optional facets are elided."""
        out: Dict[str, Any] = {
            "trace": self.trace_id,
            "request": self.request_id,
            "query": self.query,
            "source": self.source,
            "priority": self.priority,
            "status": self.status,
            "admitted": self.admitted,
            "attempts": self.attempts,
            "shed": self.shed,
            "queue_wait_ms": round(self.queue_wait_ms, 3),
            "service_ms": round(self.service_ms, 3),
        }
        optional = {
            "reason": self.reason,
            "error": self.error,
            "deadline_s": self.deadline_s,
            "budget": self.budget,
            "breaker_state": self.breaker_state,
            "phase1": self.phase1,
            "phase2": self.phase2,
            "impacted": self.impacted,
            "certified_precise": self.certified_precise,
            "certified_fraction": self.certified_fraction,
            "certificate": self.certificate,
            "degraded_phase": self.degraded_phase,
            "cg_edge_fraction": self.cg_edge_fraction,
            "hubs": self.hubs,
            "sampled": self.sampled,
            "sample_reason": self.sample_reason,
            "graph_epoch": self.graph_epoch,
            "graph_fingerprint": self.graph_fingerprint,
            "staleness": self.staleness,
            "durability": self.durability,
        }
        out.update({k: v for k, v in optional.items() if v is not None})
        out.update(self.extra)
        return out


def build_explain(
    req: QueryRequest,
    outcome: Outcome,
    breaker_state: Optional[str] = None,
    cg_edge_fraction: Optional[float] = None,
    hubs: Optional[int] = None,
    num_vertices: Optional[int] = None,
    durability: Optional[Dict[str, Any]] = None,
) -> ExplainRecord:
    """Assemble the explain record for one terminal outcome."""
    rec = ExplainRecord(
        trace_id=req.trace_id,
        request_id=req.id,
        query=req.query,
        source=req.source,
        priority=req.priority,
        status=outcome.status,
        reason=None if outcome.rejection is None else outcome.rejection.reason,
        error=outcome.error,
        # Door rejections never reach a worker (wait_s stays 0); a
        # rejection carrying queue wait expired *after* admission.
        admitted=outcome.rejection is None or outcome.wait_s > 0.0,
        attempts=req.attempts,
        shed=outcome.shed,
        queue_wait_ms=outcome.wait_s * 1000.0,
        service_ms=outcome.service_s * 1000.0,
        deadline_s=req.deadline_s,
        breaker_state=breaker_state,
        cg_edge_fraction=cg_edge_fraction,
        hubs=hubs,
        graph_epoch=outcome.epoch,
        graph_fingerprint=outcome.graph_fingerprint,
        staleness=(
            None if outcome.staleness is None
            else outcome.staleness.to_dict()
        ),
        durability=durability,
    )
    if req.max_iterations is not None or req.deadline_s is not None:
        rec.budget = {
            "deadline_s": req.deadline_s,
            "max_iterations": req.max_iterations,
        }
    res = outcome.result
    if res is not None:
        rec.phase1 = _phase_breakdown(res.phase1)
        rec.phase2 = _phase_breakdown(res.phase2)
        rec.impacted = int(res.impacted)
        rec.certified_precise = int(res.certified_precise)
        if num_vertices:
            rec.certified_fraction = round(
                res.certified_precise / num_vertices, 6
            )
        rec.certificate = certificate_summary(res.certificate)
        rec.degraded_phase = res.degraded_phase
        if res.budget_error is not None:
            budget = rec.budget or {}
            budget["exceeded"] = res.budget_error.as_dict()
            rec.budget = budget
    return rec


def render_explain(payload: Dict[str, Any]) -> str:
    """Human-readable rendering of one explain event (CLI ``obs explain``)."""
    lines = [
        f"explain: request {payload.get('request')} "
        f"[{payload.get('query')}] -> {payload.get('status')}",
        f"  trace           {payload.get('trace')}",
    ]

    def row(label: str, value: Any) -> None:
        if value is not None:
            lines.append(f"  {label:15s} {value}")

    row("source", payload.get("source"))
    row("priority", payload.get("priority"))
    row("reason", payload.get("reason"))
    row("error", payload.get("error"))
    row("admitted", payload.get("admitted"))
    row("attempts", payload.get("attempts"))
    row("shed", payload.get("shed"))
    row("queue_wait_ms", payload.get("queue_wait_ms"))
    row("service_ms", payload.get("service_ms"))
    row("deadline_s", payload.get("deadline_s"))
    row("breaker", payload.get("breaker_state"))
    budget = payload.get("budget")
    if budget is not None:
        row("budget", budget)
    for phase in ("phase1", "phase2"):
        info = payload.get(phase)
        if info:
            lines.append(
                f"  {phase:15s} {info.get('wall_ms', 0):.3f} ms, "
                f"{info.get('iterations', 0)} iters, "
                f"{info.get('edges_processed', 0)} edges, "
                f"{info.get('updates', 0)} updates"
            )
    row("impacted", payload.get("impacted"))
    row("certified", payload.get("certified_precise"))
    frac = payload.get("certified_fraction")
    if frac is not None:
        row("cert_fraction", f"{frac:.4f}")
    cert = payload.get("certificate")
    if cert:
        row(
            "certificate",
            ", ".join(f"{k}={v}" for k, v in cert.items()),
        )
    row("degraded_phase", payload.get("degraded_phase"))
    cg = payload.get("cg_edge_fraction")
    if cg is not None:
        row("cg_edges", f"{cg:.4f} of full graph")
    row("hubs", payload.get("hubs"))
    epoch = payload.get("graph_epoch")
    if epoch is not None:
        fp = payload.get("graph_fingerprint") or ""
        row("epoch", f"{epoch}" + (f" (fp {fp[:12]})" if fp else ""))
    durable = payload.get("durability")
    if durable:
        mode = durable.get("mode")
        if mode == "wal":
            row(
                "durability",
                f"wal fsync={durable.get('fsync')} "
                f"dir={durable.get('dir')}",
            )
        else:
            row("durability", mode)
    stale = payload.get("staleness")
    if stale:
        probe = stale.get("probe_precision")
        row(
            "staleness",
            f"lag={stale.get('epoch_lag')} "
            f"churned={stale.get('churned_edges')} "
            f"probe={'n/a' if probe is None else f'{probe:.1f}%'}",
        )
    if payload.get("sampled") is not None:
        row(
            "sampling",
            f"retained={payload.get('sampled')} "
            f"reason={payload.get('sample_reason')}",
        )
    return "\n".join(lines)
