"""Bounded priority admission queue with load shedding.

Backpressure design: the queue never grows past ``capacity``. When it is
full, :meth:`AdmissionQueue.offer` returns False immediately and the
service converts that into a typed ``queue_full`` rejection — shedding
load at the door instead of buffering unboundedly and timing everything
out later (the classic overload failure mode this PR exists to avoid).

Ordering is priority-first (higher ``QueryRequest.priority`` pops first),
FIFO within a priority class. :meth:`requeue` re-inserts a request that
was already admitted — it jumps to the *front* of its priority class (it
has waited once already) and is exempt from the capacity check, because
the slot it occupied was conceptually still held while it was in flight.
"""

from __future__ import annotations

import heapq
import threading
from typing import List, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs import runtime as obs_runtime

from repro.serve.request import QueryRequest


class AdmissionQueue:
    """Thread-safe bounded priority queue of :class:`QueryRequest`."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._cond = threading.Condition()
        self._heap: List[Tuple[int, int, QueryRequest]] = []
        self._seq = 0
        # Requeues get decreasing sequence numbers so they sort ahead of
        # every normal entry in the same priority class.
        self._front_seq = 0
        self._closed = False

    def _gauge(self) -> None:
        if obs_runtime._enabled:
            obs_metrics.gauge("serve.queue.depth").set(len(self._heap))

    # ------------------------------------------------------------------
    def offer(self, req: QueryRequest) -> bool:
        """Admit ``req``; False when the queue is full or closed."""
        with self._cond:
            if self._closed or len(self._heap) >= self.capacity:
                return False
            self._seq += 1
            heapq.heappush(self._heap, (-req.priority, self._seq, req))
            self._gauge()
            self._cond.notify()
            return True

    def requeue(self, req: QueryRequest) -> bool:
        """Re-admit an in-flight request at the front of its priority class."""
        with self._cond:
            if self._closed:
                return False
            self._front_seq -= 1
            heapq.heappush(self._heap, (-req.priority, self._front_seq, req))
            self._gauge()
            self._cond.notify()
            return True

    def pop(self, timeout: Optional[float] = None) -> Optional[QueryRequest]:
        """Highest-priority request, or None on timeout / closed-and-empty."""
        with self._cond:
            while not self._heap:
                if self._closed:
                    return None
                if not self._cond.wait(timeout):
                    return None
            _, _, req = heapq.heappop(self._heap)
            self._gauge()
            return req

    # ------------------------------------------------------------------
    def depth(self) -> int:
        with self._cond:
            return len(self._heap)

    def close(self) -> List[QueryRequest]:
        """Refuse further offers; return the never-served leftovers.

        The service resolves each leftover as a ``shutdown`` rejection, so
        closing cannot strand a ticket.
        """
        with self._cond:
            self._closed = True
            leftovers = [req for _, _, req in sorted(self._heap)]
            self._heap.clear()
            self._gauge()
            self._cond.notify_all()
            return leftovers
