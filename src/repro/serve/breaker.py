"""Circuit breaker around the 2Phase Completion Phase.

The Completion Phase is the expensive half of Algorithm 3 — it touches
the full graph while the Core Phase touches only the ~10%-edge core
graph. Under overload it is also the *sheddable* half: skipping it still
yields a certified, mostly-precise answer (the paper's Theorem 1 edges
are exact; the rest carry CERT_APPROX). The breaker decides when to shed.

States follow the classic pattern:

* CLOSED — completions run; consecutive ``BudgetExceeded`` failures or a
  p95 completion latency above threshold trips the breaker;
* OPEN — completions are shed wholesale until ``cooldown_s`` elapses;
* HALF_OPEN — one probe request is allowed through; success closes the
  breaker, failure re-opens it and restarts the cooldown.

The clock is injectable so trip/cooldown/probe transitions are testable
without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional

from repro.obs import journal as obs_journal
from repro.obs import metrics as obs_metrics
from repro.obs import runtime as obs_runtime

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding for serve.breaker.state.
_STATE_CODE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


def _p95(samples: List[float]) -> float:
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(0.95 * len(ordered)))
    return ordered[idx]


class CircuitBreaker:
    """Trip on consecutive failures or high p95 completion latency."""

    def __init__(
        self,
        failure_threshold: int = 3,
        latency_threshold_s: Optional[float] = None,
        min_samples: int = 8,
        window: int = 64,
        cooldown_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.latency_threshold_s = latency_threshold_s
        self.min_samples = min_samples
        self.window = window
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._latencies: List[float] = []
        self._opened_at: Optional[float] = None
        self.trips = 0
        self.probes = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow_completion(self) -> bool:
        """Whether the next request may run its Completion Phase.

        While OPEN, flips to HALF_OPEN once the cooldown has elapsed and
        admits that caller as the probe.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                assert self._opened_at is not None
                if self._clock() - self._opened_at >= self.cooldown_s:
                    self._transition(HALF_OPEN, "cooldown_elapsed")
                    self.probes += 1
                    return True
                return False
            # HALF_OPEN: exactly one probe is in flight; shed the rest
            # until it reports back.
            return False

    def record_success(self, completion_latency_s: float) -> None:
        """A Completion Phase finished inside its budget."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._latencies.clear()
                self._transition(CLOSED, "probe_succeeded")
                return
            self._latencies.append(completion_latency_s)
            if len(self._latencies) > self.window:
                del self._latencies[: -self.window]
            if (
                self._state == CLOSED
                and self.latency_threshold_s is not None
                and len(self._latencies) >= self.min_samples
                and _p95(self._latencies) > self.latency_threshold_s
            ):
                self._trip("p95_latency")

    def record_failure(self) -> None:
        """A Completion Phase blew its budget (``BudgetExceeded``)."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._trip("probe_failed")
                return
            self._consecutive_failures += 1
            if (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip("consecutive_failures")

    # ------------------------------------------------------------------
    def _trip(self, reason: str) -> None:
        # Caller holds the lock.
        self.trips += 1
        self._consecutive_failures = 0
        self._latencies.clear()
        self._transition(OPEN, reason)
        if obs_runtime._enabled:
            obs_metrics.counter("serve.breaker.trips").inc()

    def _transition(self, new_state: str, reason: str) -> None:
        # Caller holds the lock.
        old = self._state
        self._state = new_state
        if new_state == OPEN:
            self._opened_at = self._clock()
        if obs_runtime._enabled:
            obs_metrics.gauge("serve.breaker.state").set(_STATE_CODE[new_state])
            obs_journal.emit({
                "type": "event", "name": "serve.breaker",
                "transition": f"{old}->{new_state}", "reason": reason,
            })

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "trips": self.trips,
                "probes": self.probes,
                "consecutive_failures": self._consecutive_failures,
                "latency_samples": len(self._latencies),
            }
