"""Supervised worker pool: each worker thread is restarted on death.

A worker dying — whether from an injected ``serve.worker.request`` fault
or a real bug — must cost at most one retry of the in-flight request,
never a stuck service. The supervision loop mirrors
:func:`repro.resilience.retry.retry_call`: catch the escaped exception at
the thread's outermost frame, report it to the service (which requeues
the in-flight request once, or poisons it on the second death), back off
with capped exponential delay, and start a fresh worker loop.

``pause()``/``resume()`` freeze request consumption without stopping the
threads — tests use this to fill the admission queue deterministically.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, List

from repro.obs import trace as obs_trace
from repro.resilience.faults import fault_point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.serve.service import QueryService


class WorkerPool:
    """Fixed-size pool of daemon worker threads with a supervisor wrapper."""

    def __init__(
        self,
        service: "QueryService",
        num_workers: int,
        restart_base_delay_s: float = 0.005,
        restart_max_delay_s: float = 0.25,
    ) -> None:
        self._service = service
        self.num_workers = num_workers
        self._restart_base_delay_s = restart_base_delay_s
        self._restart_max_delay_s = restart_max_delay_s
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._paused = threading.Event()

    # ------------------------------------------------------------------
    def start(self) -> None:
        for wid in range(self.num_workers):
            t = threading.Thread(
                target=self._supervise,
                args=(wid,),
                name=f"serve-worker-{wid}",
                daemon=True,
            )
            self._threads.append(t)
            t.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        for t in self._threads:
            t.join(timeout)
        self._threads.clear()

    def pause(self) -> None:
        self._paused.set()

    def resume(self) -> None:
        self._paused.clear()

    def alive_count(self) -> int:
        """Worker threads currently alive (the /healthz liveness signal)."""
        return sum(1 for t in self._threads if t.is_alive())

    # ------------------------------------------------------------------
    def _supervise(self, wid: int) -> None:
        """Outermost frame of a worker thread: restart the loop on death."""
        restarts = 0
        while not self._stop.is_set():
            try:
                self._loop(wid)
                return  # clean shutdown
            except Exception as exc:  # repro: noqa RC004 — supervision boundary: the worker died; record and restart
                restarts += 1
                self._service._on_worker_restart(wid, exc, restarts)
                delay = min(
                    self._restart_max_delay_s,
                    self._restart_base_delay_s * (2 ** min(restarts - 1, 6)),
                )
                self._stop.wait(delay)

    def _loop(self, wid: int) -> None:
        """Pop-and-execute until shutdown; any escape kills this worker."""
        while not self._stop.is_set():
            if self._paused.is_set():
                self._stop.wait(0.005)
                continue
            req = self._service._queue.pop(timeout=0.05)
            if req is None:
                continue
            # The whole worker-side lifetime runs under the request's
            # trace context, so engine spans, fault fires, and the
            # death/requeue path are all stamped with its trace id.
            with obs_trace.use(req.trace):
                try:
                    fault_point("serve.worker.request")
                    outcome = self._service._execute(req)
                    self._service._resolve(req, outcome)
                except BaseException as exc:
                    # The request dies with the worker: hand it back to
                    # the service (requeue-once / poison) before
                    # re-raising into the supervisor.
                    self._service._on_worker_death(wid, req, exc)
                    raise
