"""Service-level accounting, independent of the telemetry switch.

The service keeps its own thread-safe tallies (plain ints under a lock)
so :class:`ServiceStats` is always available — even when telemetry is off
and nothing feeds the metrics registry. With telemetry on, the same
increments are mirrored into :mod:`repro.obs.metrics` under the
``serve.*`` names and summarized as a ``serve.stats`` journal event that
``repro-coregraph obs report`` renders in its Resilience table.

The load-bearing identity is :meth:`ServiceStats.lost`::

    lost = submitted - (ok + degraded + failed + rejected)

Zero lost requests is the chaos invariant: every admitted request
resolves, even across worker kills, breaker trips, and shutdown.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.obs.live.hist import HistogramSnapshot, StreamingHistogram


@dataclass
class ServiceStats:
    """Point-in-time snapshot of a :class:`~repro.serve.service.QueryService`."""

    submitted: int = 0
    admitted: int = 0
    rejected_queue_full: int = 0
    rejected_deadline: int = 0
    rejected_shutdown: int = 0
    completed: int = 0
    degraded: int = 0
    shed_completions: int = 0
    failed: int = 0
    poisoned: int = 0
    requeued: int = 0
    worker_restarts: int = 0
    breaker_trips: int = 0
    breaker_state: str = "closed"
    queue_depth: int = 0
    latency_p50_ms: Optional[float] = None
    latency_p95_ms: Optional[float] = None
    #: Answers computed on an epoch that was superseded before resolve
    #: (live-graph services only; every one carries a staleness
    #: certificate — the chaos job asserts certified == stale).
    stale_answers: int = 0
    #: Current epoch number (0 for static services).
    graph_epoch: int = 0

    @property
    def rejected(self) -> int:
        return (
            self.rejected_queue_full
            + self.rejected_deadline
            + self.rejected_shutdown
        )

    @property
    def resolved(self) -> int:
        """Requests that reached a terminal outcome."""
        return self.completed + self.degraded + self.failed + self.rejected

    @property
    def lost(self) -> int:
        """Submitted requests with no terminal outcome (must be 0 at rest)."""
        return self.submitted - self.resolved

    def to_dict(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "degraded": self.degraded,
            "shed_completions": self.shed_completions,
            "failed": self.failed,
            "poisoned": self.poisoned,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_deadline": self.rejected_deadline,
            "rejected_shutdown": self.rejected_shutdown,
            "requeued": self.requeued,
            "worker_restarts": self.worker_restarts,
            "breaker_trips": self.breaker_trips,
            "breaker_state": self.breaker_state,
            "queue_depth": self.queue_depth,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "stale_answers": self.stale_answers,
            "graph_epoch": self.graph_epoch,
            "lost": self.lost,
        }

    def render(self) -> str:
        """Aligned text table (the ``serve --smoke`` report)."""
        rows = self.to_dict()
        width = max(len(k) for k in rows)
        return "\n".join(
            f"{k:{width}s}  {'-' if v is None else v}" for k, v in rows.items()
        )


class Tally:
    """Thread-safe counters + full-run streaming latency histograms.

    Latency and queue-wait distributions are log-bucketed streaming
    histograms (:mod:`repro.obs.live.hist`): constant memory, every
    observation retained. The bounded reservoir this replaces kept only
    the most recent 512 samples, so saturation benchmarks reported
    percentiles of the run's *tail* instead of the run.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        self._latency_ms = StreamingHistogram()
        self._wait_ms = StreamingHistogram()

    def inc(self, key: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + amount

    def get(self, key: str) -> int:
        with self._lock:
            return self._counts.get(key, 0)

    def observe_latency(
        self, service_s: float, trace_id: Optional[str] = None
    ) -> None:
        self._latency_ms.observe(service_s * 1000.0, exemplar=trace_id)

    def observe_wait(
        self, wait_s: float, trace_id: Optional[str] = None
    ) -> None:
        self._wait_ms.observe(wait_s * 1000.0, exemplar=trace_id)

    def percentile_ms(self, q: float) -> Optional[float]:
        return self._latency_ms.quantile(q)

    def latency_snapshot(self) -> HistogramSnapshot:
        """Full-run service-latency distribution (milliseconds)."""
        return self._latency_ms.snapshot()

    def wait_snapshot(self) -> HistogramSnapshot:
        """Full-run queue-wait distribution (milliseconds)."""
        return self._wait_ms.snapshot()

    def latency_histogram(self) -> StreamingHistogram:
        """The live latency histogram (exporters render it directly)."""
        return self._latency_ms

    def wait_histogram(self) -> StreamingHistogram:
        return self._wait_ms

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)
