"""Request, rejection, and outcome types for the query service.

The contract every consumer of :mod:`repro.serve` leans on: a submitted
request resolves to exactly one :class:`Outcome`, whose ``status`` is one
of

* :data:`STATUS_OK` — the full 2Phase result (100% precise values);
* :data:`STATUS_DEGRADED` — a partial answer with a per-vertex precision
  certificate, because the request's deadline expired mid-run or the
  service shed the Completion Phase under overload;
* :data:`STATUS_REJECTED` — a typed admission refusal
  (:class:`Rejection` with ``queue_full``, ``deadline_unmeetable``, or
  ``shutdown``), decided before any work was done;
* :data:`STATUS_FAILED` — the request failed twice inside workers (it is
  *poisoned*) and is returned as a structured error instead of being
  retried forever.

There is no fifth state: no hang, no silent drop. That invariant is what
the chaos-service CI step asserts under injected worker kills.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.twophase import TwoPhaseResult
from repro.obs.trace import TraceContext

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_REJECTED = "rejected"
STATUS_FAILED = "failed"

REASON_QUEUE_FULL = "queue_full"
REASON_DEADLINE = "deadline_unmeetable"
REASON_SHUTDOWN = "shutdown"


@dataclass
class QueryRequest:
    """One admitted (or to-be-admitted) query.

    ``deadline_s`` is relative to submission; the worker derives a
    :class:`~repro.resilience.budget.Budget` from whatever remains when
    the request leaves the queue. ``priority`` orders the admission queue
    (higher pops first; FIFO within a priority class).
    """

    query: str
    source: Optional[int] = None
    priority: int = 0
    deadline_s: Optional[float] = None
    max_iterations: Optional[int] = None
    triangle: bool = False
    id: int = 0
    submitted_at: float = 0.0
    attempts: int = 0
    failures: List[str] = field(default_factory=list)
    #: Causal trace context minted at submit; ``trace.span_id`` is the
    #: request's root span, which every worker-side span parents under.
    trace: Optional[TraceContext] = None
    #: ``perf_counter`` at submit — the journal-relative start of the
    #: synthetic ``serve.request`` root span and ``serve.queue.wait``.
    submitted_perf: float = 0.0

    @property
    def trace_id(self) -> Optional[str]:
        return None if self.trace is None else self.trace.trace_id

    def remaining_s(self, now: float) -> Optional[float]:
        """Seconds of deadline left at time ``now``, or None (unbounded)."""
        if self.deadline_s is None:
            return None
        return self.deadline_s - (now - self.submitted_at)


@dataclass
class Rejection:
    """Typed admission refusal."""

    reason: str
    detail: str = ""


@dataclass
class Outcome:
    """Terminal resolution of one request (see module docstring)."""

    request: QueryRequest
    status: str
    result: Optional[TwoPhaseResult] = None
    rejection: Optional[Rejection] = None
    error: Optional[str] = None
    shed: bool = False
    wait_s: float = 0.0
    service_s: float = 0.0
    #: Epoch the answer was computed on (live-graph services only).
    epoch: Optional[int] = None
    #: Content fingerprint of that epoch's graph.
    graph_fingerprint: Optional[str] = None
    #: Staleness certificate when newer epochs existed at resolve time
    #: (a :class:`repro.evolve.StalenessCertificate`); None means the
    #: answer is fresh — computed on the epoch that was still latest.
    staleness: Optional[object] = None

    @property
    def values(self):
        """The value array, for ok/degraded outcomes (else None)."""
        return None if self.result is None else self.result.values

    @property
    def certificate(self):
        """Per-vertex precision certificate (degraded and ok outcomes)."""
        return None if self.result is None else self.result.certificate


class Ticket:
    """Caller-facing handle: resolves exactly once to an :class:`Outcome`."""

    def __init__(self, request: QueryRequest) -> None:
        self.request = request
        self._done = threading.Event()
        self._outcome: Optional[Outcome] = None

    def resolve(self, outcome: Outcome) -> bool:
        """Deliver the outcome; returns False if already resolved."""
        if self._done.is_set():
            return False
        self._outcome = outcome
        self._done.set()
        return True

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> Outcome:
        """Block until resolved; raises TimeoutError on timeout."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.request.id} ({self.request.query}) "
                f"unresolved after {timeout}s"
            )
        assert self._outcome is not None
        return self._outcome
