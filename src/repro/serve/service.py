"""The query service: many concurrent 2Phase queries over one shared pair.

:class:`QueryService` owns a shared ``(Graph, CoreGraph)`` pair plus a
bounded admission queue, a supervised worker pool, and a circuit breaker
around the Completion Phase. The degradation ladder under load:

1. healthy — every request runs both phases and returns a full result;
2. breaker OPEN — the Completion Phase is shed; requests get Core-Phase
   answers flagged ``degraded=True`` with per-vertex certificates;
3. queue full / deadline unmeetable — requests are rejected at the door
   with a typed :class:`~repro.serve.request.Rejection`.

Every path resolves the caller's :class:`~repro.serve.request.Ticket`
exactly once — including worker deaths (requeue once, then poison) and
shutdown (leftover queue entries become ``shutdown`` rejections). The
``ServiceStats.lost == 0`` identity over that contract is what the chaos
CI step asserts under injected worker kills.

With an :class:`~repro.evolve.EpochStore` (live-graph mode) the service
pins one immutable epoch per request: the graph and CG the engines see
are always a matched pair, mutations publish *new* epochs concurrently,
and answers computed on a superseded epoch carry a
:class:`~repro.evolve.StalenessCertificate` quantifying the lag.

Thread-safety notes: 2Phase itself keeps all mutable state per-call (see
:mod:`repro.core.twophase`); the shared caches the workers touch
(``symmetric_view``, :mod:`repro.harness.cache`,
:class:`~repro.io.artifacts.ArtifactCache`) are individually locked.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.checks.sanitize import probes as san_probes
from repro.checks.sanitize import runtime as san_runtime
from repro.core.coregraph import CoreGraph
from repro.core.twophase import two_phase
from repro.evolve.epoch import EpochStore
from repro.graph.csr import Graph
from repro.obs import journal as obs_journal
from repro.obs import metrics as obs_metrics
from repro.obs import runtime as obs_runtime
from repro.obs import trace as obs_trace
from repro.obs.live import prom
from repro.obs.live.slo import SloSpec, SloTracker
from repro.obs.spans import span
from repro.obs.trace import TraceStore
from repro.queries.registry import get_spec
from repro.resilience.budget import Budget

from repro.serve.breaker import CircuitBreaker
from repro.serve.explain import build_explain
from repro.serve.queue import AdmissionQueue
from repro.serve.request import (
    REASON_DEADLINE,
    REASON_QUEUE_FULL,
    REASON_SHUTDOWN,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_REJECTED,
    Outcome,
    QueryRequest,
    Rejection,
    Ticket,
)
from repro.serve.stats import ServiceStats, Tally
from repro.serve.workers import WorkerPool


@dataclass
class ServiceConfig:
    """Tunables for one :class:`QueryService`."""

    workers: int = 4
    queue_capacity: int = 64
    default_deadline_s: Optional[float] = None
    default_max_iterations: Optional[int] = None
    triangle: bool = False
    max_attempts: int = 2
    breaker_failure_threshold: int = 3
    breaker_latency_threshold_s: Optional[float] = None
    breaker_min_samples: int = 8
    breaker_window: int = 64
    breaker_cooldown_s: float = 1.0
    #: EWMA smoothing for the admission-time service estimate.
    ewma_alpha: float = 0.2
    #: SLO specs tracked by the service (None = :func:`default_slos`).
    slo_specs: Optional[Sequence[SloSpec]] = None
    #: Re-evaluate SLO burn rates every N resolved requests.
    slo_eval_every: int = 32
    #: Tail-sampler tuning: retained-trace capacity, per-trace event cap,
    #: the healthy-traffic head-sampling rate (1 in N), and the latency
    #: above which an otherwise-healthy request is always retained.
    trace_capacity: int = 256
    trace_max_events: int = 512
    trace_head_every: int = 16
    trace_slow_ms: Optional[float] = 500.0


class QueryService:
    """Concurrent 2Phase query service over one shared graph/proxy pair."""

    def __init__(
        self,
        g: Optional[Graph] = None,
        proxy: Optional[Union[CoreGraph, Graph]] = None,
        config: Optional[ServiceConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        epochs: Optional[EpochStore] = None,
        maintainer: Optional[Any] = None,
    ) -> None:
        if epochs is not None:
            # Live-graph mode: the store owns the pair; requests pin an
            # epoch for their lifetime instead of touching self.g/proxy.
            initial = epochs.current()
            g = initial.graph if g is None else g
            proxy = initial.proxy if proxy is None else proxy
        if g is None or proxy is None:
            raise ValueError(
                "QueryService needs either (g, proxy) or an EpochStore"
            )
        self.g = g
        self.proxy = proxy
        self.epochs = epochs
        # The EpochMaintainer (when serving a live graph) — the source of
        # the durability facet on explain records and the wal metric rows.
        self.maintainer = maintainer
        self.config = config or ServiceConfig()
        self._clock = clock
        self._queue = AdmissionQueue(self.config.queue_capacity)
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            latency_threshold_s=self.config.breaker_latency_threshold_s,
            min_samples=self.config.breaker_min_samples,
            window=self.config.breaker_window,
            cooldown_s=self.config.breaker_cooldown_s,
        )
        self._pool = WorkerPool(self, self.config.workers)
        self._tally = Tally()
        self.traces = TraceStore(
            sampler=obs_trace.TailSampler(
                slow_ms=self.config.trace_slow_ms,
                head_every=self.config.trace_head_every,
            ),
            capacity=self.config.trace_capacity,
            max_events_per_trace=self.config.trace_max_events,
        )
        # Explain-record constants: the CG/full-graph edge ratio and hub
        # count are properties of the shared pair, computed once.
        self._num_vertices = int(g.num_vertices)
        self._cg_edge_fraction: Optional[float] = None
        if g.num_edges:
            self._cg_edge_fraction = float(proxy.num_edges) / float(g.num_edges)
        hubs = getattr(proxy, "hubs", None)
        self._num_hubs: Optional[int] = None if hubs is None else len(hubs)
        self.slo = SloTracker(self.config.slo_specs, clock=self._clock)
        self._resolved_since_slo_eval = 0
        self._exporter: Optional[object] = None
        self._cond = threading.Condition()
        self._tickets: Dict[int, Ticket] = {}
        self._next_id = 0
        self._outstanding = 0
        self._ewma_service_s: Optional[float] = None
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    def start(self) -> "QueryService":
        if not self._started:
            self._started = True
            obs_trace.install_collector(self.traces.record)
            self._pool.start()
        return self

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    def submit(
        self,
        query: str,
        source: Optional[int] = None,
        priority: int = 0,
        deadline_s: Optional[float] = None,
        max_iterations: Optional[int] = None,
        triangle: Optional[bool] = None,
    ) -> Ticket:
        """Admit (or reject) one query; always returns a resolving Ticket.

        Unknown query names raise ``KeyError`` immediately — a malformed
        call is a caller bug, not service load. Everything else resolves
        through the ticket.
        """
        get_spec(query)  # validate before accounting
        cfg = self.config
        with self._cond:
            self._next_id += 1
            req = QueryRequest(
                query=query,
                source=source,
                priority=priority,
                deadline_s=(
                    cfg.default_deadline_s if deadline_s is None else deadline_s
                ),
                max_iterations=(
                    cfg.default_max_iterations
                    if max_iterations is None else max_iterations
                ),
                triangle=cfg.triangle if triangle is None else triangle,
                id=self._next_id,
                submitted_at=self._clock(),
                trace=obs_trace.new_trace(),
                submitted_perf=time.perf_counter(),
            )
            ticket = Ticket(req)
            self._tickets[req.id] = ticket
            self._outstanding += 1
            closed = self._closed
        assert req.trace is not None
        self.traces.begin(req.trace.trace_id)
        self._tally.inc("submitted")

        with obs_trace.use(req.trace):
            with span("serve.admit", query=req.query, request=req.id):
                rejection = self._admission_check(req, closed)
            if rejection is not None:
                self._resolve(
                    req,
                    Outcome(request=req, status=STATUS_REJECTED,
                            rejection=rejection),
                )
                return ticket
        self._tally.inc("admitted")
        if obs_runtime._enabled:
            obs_metrics.counter("serve.admitted").inc()
        return ticket

    def _admission_check(
        self, req: QueryRequest, closed: bool
    ) -> Optional[Rejection]:
        """Decide req's fate at the door; None means admitted."""
        if closed:
            return Rejection(REASON_SHUTDOWN, "service is shutting down")
        if req.deadline_s is not None:
            if req.deadline_s <= 0:
                return Rejection(REASON_DEADLINE, "non-positive deadline")
            est = self._estimate_wait_s()
            if est is not None and est > req.deadline_s:
                return Rejection(
                    REASON_DEADLINE,
                    f"estimated queue wait {est:.3f}s exceeds "
                    f"deadline {req.deadline_s:.3f}s",
                )
        if not self._queue.offer(req):
            return Rejection(
                REASON_QUEUE_FULL,
                f"admission queue at capacity {self._queue.capacity}",
            )
        return None

    def _estimate_wait_s(self) -> Optional[float]:
        """Expected queue wait from depth and the EWMA service time."""
        ewma = self._ewma_service_s
        if ewma is None:
            return None
        return (self._queue.depth() / self.config.workers) * ewma

    # ------------------------------------------------------------------
    def _emit_queue_wait(self, req: QueryRequest, wait_s: float) -> None:
        """Synthesize the queue-wait span: no thread owns the queue time,
        so the interval (submit -> worker pickup) is journaled directly as
        a span event parented under the request's root span."""
        if not obs_runtime._enabled or req.trace is None:
            return
        event = {
            "type": "span", "name": "serve.queue.wait",
            "duration_s": wait_s, "depth": 1,
            "parent": "serve.request",
            "span_id": obs_trace.new_span_id(),
            "parent_span_id": req.trace.span_id,
            "trace": req.trace.trace_id,
            "request": req.id,
        }
        active = obs_journal.active_journal()
        if active is not None:
            event["start_t"] = active.rel_time(req.submitted_perf)
        obs_journal.emit(event)

    def _execute(self, req: QueryRequest) -> Outcome:
        """Run one admitted request (worker thread context)."""
        now = self._clock()
        wait_s = now - req.submitted_at
        self._emit_queue_wait(req, wait_s)
        remaining = req.remaining_s(now)
        if remaining is not None and remaining <= 0:
            # Expired while queued: abort before any engine work.
            return Outcome(
                request=req, status=STATUS_REJECTED,
                rejection=Rejection(
                    REASON_DEADLINE, "deadline expired while queued"
                ),
                wait_s=wait_s,
            )
        budget: Optional[Budget] = None
        if remaining is not None or req.max_iterations is not None:
            # two_phase() claims the budget (begin_run); the service only
            # constructs it, so the single-claim invariant holds.
            budget = Budget(
                deadline_s=remaining, max_iterations=req.max_iterations
            )
        shed = not self.breaker.allow_completion()
        if shed:
            self._tally.inc("shed_completions")
            if obs_runtime._enabled:
                obs_metrics.counter("serve.shed").inc()
        spec = get_spec(req.query)
        t0 = self._clock()
        if self.epochs is not None:
            res, epoch, stale = self._execute_pinned(req, spec, budget, shed)
        else:
            epoch, stale = None, None
            with span("serve.execute", query=req.query, request=req.id):
                res = two_phase(
                    self.g, self.proxy, spec, req.source,
                    triangle=req.triangle, budget=budget,
                    anytime=True, completion=not shed,
                )
        service_s = self._clock() - t0

        alpha = self.config.ewma_alpha
        with self._cond:
            prior = self._ewma_service_s
            self._ewma_service_s = (
                service_s if prior is None
                else alpha * service_s + (1.0 - alpha) * prior
            )

        if shed:
            status = STATUS_DEGRADED
        elif res.degraded:
            status = STATUS_DEGRADED
            if res.degraded_phase == 2:
                # Only Completion-Phase blowups feed the breaker: a
                # Core-Phase abort says the request's budget was tiny,
                # not that the expensive phase is drowning.
                self.breaker.record_failure()
        else:
            status = STATUS_OK
            self.breaker.record_success(res.phase2.wall_time)
        if stale is not None:
            self._tally.inc("stale_answers")
            if obs_runtime._enabled:
                obs_metrics.counter("evolve.stale_answers").inc()
                obs_metrics.gauge("evolve.epoch_lag").set(stale.epoch_lag)
        return Outcome(
            request=req, status=status, result=res, shed=shed,
            wait_s=wait_s, service_s=service_s,
            epoch=None if epoch is None else epoch.number,
            graph_fingerprint=None if epoch is None else epoch.fingerprint,
            staleness=stale,
        )

    def _execute_pinned(self, req, spec, budget, shed):
        """Run one request against a pinned epoch (live-graph services).

        The pin holds the (graph, proxy) pair stable for the request's
        whole execution — concurrent mutations publish *new* epochs and
        never touch a pinned one, so the 2Phase exactness argument holds
        unchanged. If newer epochs exist by the time the answer is
        computed, a :class:`~repro.evolve.StalenessCertificate`
        quantifying the lag rides back on the Outcome.
        """
        assert self.epochs is not None
        with self.epochs.pin() as epoch:
            if san_runtime._enabled:
                san_probes.check_epoch_integrity(epoch, "serve.execute")
            # Theorem-1 triangle inequalities were certified against the
            # CG *as built*; any churn since invalidates them, so the
            # fast path is gated per-epoch (answers stay exact either
            # way — 2Phase just re-derives what the certificate skipped).
            triangle = req.triangle and epoch.triangle_safe
            with obs_journal.context(
                graph_epoch=epoch.number,
                graph_fingerprint=epoch.fingerprint,
            ):
                with span(
                    "serve.execute", query=req.query, request=req.id,
                    epoch=epoch.number,
                ):
                    res = two_phase(
                        epoch.graph, epoch.proxy, spec, req.source,
                        triangle=triangle, budget=budget,
                        anytime=True, completion=not shed,
                    )
            latest = self.epochs.current()
            stale = (
                epoch.staleness(latest)
                if latest.number > epoch.number else None
            )
        return res, epoch, stale

    # ------------------------------------------------------------------
    def _resolve(self, req: QueryRequest, outcome: Outcome) -> None:
        """Deliver a terminal outcome exactly once; all accounting lives here."""
        with self._cond:
            ticket = self._tickets.pop(req.id, None)
        if ticket is None:
            return  # already resolved (e.g. crash after a late resolve)
        with obs_trace.use(req.trace):
            self._account_and_finish(req, outcome)
        ticket.resolve(outcome)
        with self._cond:
            self._outstanding -= 1
            self._cond.notify_all()

    def _account_and_finish(self, req: QueryRequest, outcome: Outcome) -> None:
        """Tally the outcome, close its trace, and journal the wide events."""
        if outcome.status == STATUS_OK:
            self._tally.inc("completed")
        elif outcome.status == STATUS_DEGRADED:
            self._tally.inc("degraded")
        elif outcome.status == STATUS_FAILED:
            self._tally.inc("failed")
        else:
            assert outcome.rejection is not None
            self._tally.inc(f"rejected_{outcome.rejection.reason}")
        terminal_latency_ms: Optional[float] = None
        if outcome.status in (STATUS_OK, STATUS_DEGRADED):
            terminal_latency_ms = outcome.service_s * 1000.0
            self._tally.observe_latency(outcome.service_s, req.trace_id)
            self._tally.observe_wait(outcome.wait_s, req.trace_id)
        self.slo.record(
            failed=outcome.status == STATUS_FAILED,
            degraded=outcome.status == STATUS_DEGRADED,
            shed=outcome.shed,
            latency_ms=terminal_latency_ms,
        )
        self._maybe_evaluate_slo()

        # Close the trace: build the explain record, let the tail sampler
        # decide retention on the end-to-end latency, then stamp the
        # sampling verdict back onto the (shared) explain dict so the
        # retained trace and the journal carry it.
        explain = build_explain(
            req, outcome,
            breaker_state=str(self.breaker.snapshot()["state"]),
            cg_edge_fraction=self._cg_edge_fraction,
            hubs=self._num_hubs,
            num_vertices=self._num_vertices,
            durability=(
                None if self.maintainer is None
                else self.maintainer.durability()
            ),
        ).to_dict()
        total_ms = (outcome.wait_s + outcome.service_s) * 1000.0
        sample_reason: Optional[str] = None
        if req.trace is not None:
            sample_reason = self.traces.finish(
                req.trace.trace_id, outcome.status,
                latency_ms=total_ms, shed=outcome.shed, explain=explain,
            )
        explain["sampled"] = sample_reason is not None
        if sample_reason is not None:
            explain["sample_reason"] = sample_reason

        if obs_runtime._enabled:
            if outcome.status == STATUS_OK:
                obs_metrics.counter("serve.completed").inc()
                obs_metrics.stream_hist("serve.latency_ms").observe(
                    outcome.service_s * 1000.0, exemplar=req.trace_id
                )
                obs_metrics.stream_hist("serve.queue_wait_ms").observe(
                    outcome.wait_s * 1000.0, exemplar=req.trace_id
                )
            elif outcome.status == STATUS_DEGRADED:
                obs_metrics.counter("serve.degraded").inc()
                obs_metrics.stream_hist("serve.latency_ms").observe(
                    outcome.service_s * 1000.0, exemplar=req.trace_id
                )
                obs_metrics.stream_hist("serve.queue_wait_ms").observe(
                    outcome.wait_s * 1000.0, exemplar=req.trace_id
                )
            elif outcome.status == STATUS_REJECTED:
                assert outcome.rejection is not None
                obs_metrics.counter(
                    "serve.rejected", reason=outcome.rejection.reason
                ).inc()
            self._emit_root_span(req, outcome)
            obs_journal.emit({
                "type": "event", "name": "serve.request",
                "request": req.id, "query": req.query,
                "status": outcome.status,
                "reason": (
                    outcome.rejection.reason if outcome.rejection else None
                ),
                "shed": outcome.shed,
                "attempts": req.attempts,
                "wait_ms": round(outcome.wait_s * 1000.0, 3),
                "service_ms": round(outcome.service_s * 1000.0, 3),
            })
            obs_journal.emit({
                "type": "event", "name": "serve.explain", **explain,
            })

    def _emit_root_span(self, req: QueryRequest, outcome: Outcome) -> None:
        """Synthesize the ``serve.request`` root span (submit -> resolve).

        The root's span id is the one the trace context was minted with,
        so every span/event emitted anywhere in the request's lifetime —
        admission, queue wait, worker execution, engine phases, injected
        faults — already parents under it.
        """
        if req.trace is None:
            return
        event = {
            "type": "span", "name": "serve.request",
            "duration_s": time.perf_counter() - req.submitted_perf,
            "depth": 0, "parent": None,
            "span_id": req.trace.span_id, "parent_span_id": None,
            "trace": req.trace.trace_id,
            "request": req.id, "query": req.query,
            "status": outcome.status,
        }
        active = obs_journal.active_journal()
        if active is not None:
            event["start_t"] = active.rel_time(req.submitted_perf)
        obs_journal.emit(event)

    # ------------------------------------------------------------------
    def _on_worker_death(
        self, wid: int, req: QueryRequest, exc: BaseException
    ) -> None:
        """The in-flight request's worker died: requeue once, then poison."""
        req.attempts += 1
        req.failures.append(f"{type(exc).__name__}: {exc}")
        with self._cond:
            still_open = req.id in self._tickets
        if not still_open:
            return  # the crash landed after resolution; nothing to redo
        if req.attempts >= self.config.max_attempts:
            self._tally.inc("poisoned")
            if obs_runtime._enabled:
                obs_metrics.counter("serve.poisoned").inc()
            self._resolve(
                req,
                Outcome(
                    request=req, status=STATUS_FAILED,
                    error="; ".join(req.failures),
                ),
            )
            return
        self._tally.inc("requeued")
        if obs_runtime._enabled:
            obs_metrics.counter("serve.requeued").inc()
        if not self._queue.requeue(req):
            self._resolve(
                req,
                Outcome(
                    request=req, status=STATUS_REJECTED,
                    rejection=Rejection(
                        REASON_SHUTDOWN,
                        "service shut down while the request was retried",
                    ),
                ),
            )

    def _on_worker_restart(
        self, wid: int, exc: Exception, restarts: int
    ) -> None:
        self._tally.inc("worker_restarts")
        if obs_runtime._enabled:
            obs_metrics.counter("serve.worker.restarts").inc()
            obs_journal.emit({
                "type": "event", "name": "serve.worker.restart",
                "worker": wid, "restarts": restarts,
                "error": f"{type(exc).__name__}: {exc}",
            })

    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted request has resolved."""
        deadline = None if timeout is None else self._clock() + timeout
        with self._cond:
            while self._outstanding > 0:
                wait = None
                if deadline is not None:
                    wait = deadline - self._clock()
                    if wait <= 0:
                        return False
                self._cond.wait(wait)
        return True

    def _maybe_evaluate_slo(self) -> None:
        """Amortized burn-rate evaluation (every ``slo_eval_every`` resolves)."""
        with self._cond:
            self._resolved_since_slo_eval += 1
            due = self._resolved_since_slo_eval >= self.config.slo_eval_every
            if due:
                self._resolved_since_slo_eval = 0
        if due:
            self.slo.evaluate()

    def close(self, timeout: float = 5.0) -> None:
        """Stop admitting, resolve the backlog as shutdown, stop workers."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
        self.stop_exporter()
        for req in self._queue.close():
            self._resolve(
                req,
                Outcome(
                    request=req, status=STATUS_REJECTED,
                    rejection=Rejection(
                        REASON_SHUTDOWN, "service closed before execution"
                    ),
                ),
            )
        self._pool.stop(timeout)
        obs_trace.uninstall_collector(self.traces.record)
        if obs_runtime._enabled:
            obs_journal.emit({
                "type": "event", "name": "serve.stats",
                **self.stats().to_dict(),
            })

    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        c = self._tally.counts()
        snap = self.breaker.snapshot()
        return ServiceStats(
            submitted=c.get("submitted", 0),
            admitted=c.get("admitted", 0),
            rejected_queue_full=c.get("rejected_queue_full", 0),
            rejected_deadline=c.get("rejected_deadline_unmeetable", 0),
            rejected_shutdown=c.get("rejected_shutdown", 0),
            completed=c.get("completed", 0),
            degraded=c.get("degraded", 0),
            shed_completions=c.get("shed_completions", 0),
            failed=c.get("failed", 0),
            poisoned=c.get("poisoned", 0),
            requeued=c.get("requeued", 0),
            worker_restarts=c.get("worker_restarts", 0),
            breaker_trips=int(snap["trips"]),
            breaker_state=str(snap["state"]),
            queue_depth=self._queue.depth(),
            latency_p50_ms=self._tally.percentile_ms(0.50),
            latency_p95_ms=self._tally.percentile_ms(0.95),
            stale_answers=c.get("stale_answers", 0),
            graph_epoch=(
                0 if self.epochs is None else self.epochs.latest_number()
            ),
        )

    def latency_snapshot(self):
        """Immutable snapshot of the full service-latency distribution."""
        return self._tally.latency_snapshot()

    def wait_snapshot(self):
        """Immutable snapshot of the queue-wait distribution."""
        return self._tally.wait_snapshot()

    # ------------------------------------------------------------------
    # Live observability plane (scrape exporter + SLO surfaces)
    # ------------------------------------------------------------------
    def statz(self) -> Dict[str, object]:
        """The /statz document: service stats + SLO state, always on."""
        self.slo.evaluate()
        doc = dict(self.stats().to_dict())
        doc["slo"] = self.slo.statz()
        doc["workers_alive"] = self._pool.alive_count()
        doc["traces"] = {
            **self.traces.stats(),
            "recent": self.traces.recent(),
        }
        return doc

    def healthz(self) -> Tuple[bool, Dict[str, object]]:
        """Liveness: healthy while open with at least one live worker."""
        with self._cond:
            closed = self._closed
        alive = self._pool.alive_count()
        healthy = not closed and (alive > 0 or not self._started)
        return healthy, {
            "workers_alive": alive,
            "breaker": str(self.breaker.snapshot()["state"]),
            "queue_depth": self._queue.depth(),
            "slo_firing": self.slo.firing(),
        }

    def metric_rows(self) -> List[prom.Row]:
        """Always-on ``serve.*`` exporter rows from the service tally.

        Independent of the telemetry switch (the tally always counts), so
        a scraper sees accurate service series even on ``--metrics``-less
        runs. The exporter gives these rows precedence over the registry's
        telemetry-gated twins of the same names.
        """
        stats = self.stats()
        rows: List[prom.Row] = [
            ("counter", "serve.submitted", (), stats.submitted),
            ("counter", "serve.admitted", (), stats.admitted),
            ("counter", "serve.completed", (), stats.completed),
            ("counter", "serve.degraded", (), stats.degraded),
            ("counter", "serve.shed", (), stats.shed_completions),
            ("counter", "serve.failed", (), stats.failed),
            ("counter", "serve.poisoned", (), stats.poisoned),
            ("counter", "serve.requeued", (), stats.requeued),
            ("counter", "serve.worker.restarts", (), stats.worker_restarts),
            ("counter", "serve.rejected", (("reason", "queue_full"),),
             stats.rejected_queue_full),
            ("counter", "serve.rejected", (("reason", "deadline_unmeetable"),),
             stats.rejected_deadline),
            ("counter", "serve.rejected", (("reason", "shutdown"),),
             stats.rejected_shutdown),
            ("gauge", "serve.queue_depth", (), stats.queue_depth),
            ("gauge", "serve.workers_alive", (), self._pool.alive_count()),
            ("gauge", "serve.breaker.trips", (), stats.breaker_trips),
            ("gauge", "serve.lost", (), stats.lost),
            ("stream_hist", "serve.latency_ms", (),
             self._tally.latency_histogram()),
            ("stream_hist", "serve.queue_wait_ms", (),
             self._tally.wait_histogram()),
        ]
        if self.epochs is not None:
            rows.extend([
                ("gauge", "evolve.epoch", (), stats.graph_epoch),
                ("gauge", "evolve.pinned", (), self.epochs.pinned_count()),
                ("counter", "evolve.stale_answers", (), stats.stale_answers),
            ])
        wal = getattr(self.maintainer, "wal", None)
        if wal is not None:
            wstats = wal.stats()
            rows.extend([
                ("counter", "evolve.wal.appends", (), wstats["appends"]),
                ("counter", "evolve.wal.fsyncs", (), wstats["fsyncs"]),
                ("counter", "evolve.wal.compacted_segments", (),
                 wstats["compacted_segments"]),
                ("gauge", "evolve.wal.segments", (), wstats["segments"]),
            ])
        tstats = self.traces.stats()
        rows.extend([
            ("counter", "obs.trace.retained", (), tstats.get("retained", 0)),
            ("counter", "obs.trace.dropped", (), tstats.get("dropped", 0)),
            ("counter", "obs.trace.evicted", (), tstats.get("evicted", 0)),
            ("counter", "obs.trace.truncated", (), tstats.get("truncated", 0)),
            ("counter", "obs.trace.abandoned", (), tstats.get("abandoned", 0)),
            ("gauge", "obs.trace.store.traces", (), tstats.get("traces", 0)),
            ("gauge", "obs.trace.store.events", (), tstats.get("events", 0)),
        ])
        for state in self.slo.evaluate():
            labels = (("slo", state.spec.name),)
            rows.append(
                ("gauge", "serve.slo.burn_rate", labels, state.burn_long)
            )
            rows.append(
                ("gauge", "serve.slo.firing", labels, float(state.firing))
            )
        return rows

    def start_exporter(self, port: int = 0, host: str = "127.0.0.1"):
        """Start (or return) the /metrics endpoint for this service."""
        if self._exporter is not None:
            return self._exporter
        from repro.obs.live.server import MetricsServer

        self._exporter = MetricsServer(
            port=port,
            host=host,
            collectors=[self.metric_rows],
            healthz=self.healthz,
            statz=self.statz,
        ).start()
        return self._exporter

    def stop_exporter(self) -> None:
        exporter = self._exporter
        self._exporter = None
        if exporter is not None:
            exporter.stop()
