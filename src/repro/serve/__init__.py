"""repro.serve — concurrent 2Phase query service with graceful degradation.

An in-process, thread-based service that runs many
:func:`repro.core.twophase.two_phase` queries concurrently over one shared
``(Graph, CoreGraph)`` pair, and stays correct and responsive under
overload and injected faults:

* bounded priority admission with typed load shedding
  (:class:`~repro.serve.queue.AdmissionQueue`);
* per-request deadlines that become
  :class:`~repro.resilience.budget.Budget` limits inside the engines;
* a circuit breaker around the Completion Phase
  (:class:`~repro.serve.breaker.CircuitBreaker`) that degrades to
  certificate-carrying Core-Phase answers instead of queue collapse;
* supervised workers (:class:`~repro.serve.workers.WorkerPool`) with
  requeue-once / poison semantics for crashed requests.

Entry point: :class:`~repro.serve.service.QueryService`. See
``docs/robustness.md`` ("Serving under overload") for the operational
story and ``repro-coregraph serve --smoke`` for a self-checking demo.
"""

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serve.queue import AdmissionQueue
from repro.serve.request import (
    REASON_DEADLINE,
    REASON_QUEUE_FULL,
    REASON_SHUTDOWN,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_REJECTED,
    Outcome,
    QueryRequest,
    Rejection,
    Ticket,
)
from repro.serve.service import QueryService, ServiceConfig
from repro.serve.stats import ServiceStats
from repro.serve.workers import WorkerPool

__all__ = [
    "AdmissionQueue",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "Outcome",
    "QueryRequest",
    "QueryService",
    "Rejection",
    "ServiceConfig",
    "ServiceStats",
    "Ticket",
    "WorkerPool",
    "REASON_DEADLINE",
    "REASON_QUEUE_FULL",
    "REASON_SHUTDOWN",
    "STATUS_DEGRADED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_REJECTED",
]
