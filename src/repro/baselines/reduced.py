"""Reduced Graph baseline (input reduction, Kusum et al., HPDC '16).

The paper's §4 criticism of this prior method: "transformations eliminate
vertices and graph size reductions are limited. [The] smallest reduced
graph had around 50% of the edges and it can only be used to evaluate
queries for [a] subset of vertices in the full graph." This module
implements the two classic property-preserving transformations so that
criticism can be measured (the ``suppl_reduced`` experiment):

* **degree-0 pruning** — vertices with no edges leave the query-relevant
  graph entirely;
* **chain splicing** — a vertex with exactly one in-edge and one out-edge
  (and not a self-cycle) is removed, its two edges fused into a shortcut
  whose weight combines per the query's ⊕ (sum for SSSP, min for SSWP, max
  for SSNP, product for Viterbi).

Values computed on the reduced graph are exact *for retained vertices
only* — eliminated vertices are simply not queryable, which is the
fundamental contrast with core graphs (all vertices kept).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.builder import from_arrays
from repro.graph.csr import Graph
from repro.queries.base import QuerySpec


@dataclass
class ReducedGraph:
    """A vertex-eliminating reduction of a graph for one query kind.

    ``vertex_map[v]`` is ``v``'s id in the reduced graph, or -1 if ``v``
    was eliminated (unqueryable). ``graph`` carries weights in the spec's
    *transformed* space (probabilities for Viterbi).
    """

    graph: Graph
    vertex_map: np.ndarray
    retained: np.ndarray  # original ids of the reduced graph's vertices
    spec_name: str
    source_num_edges: int
    source_num_vertices: int

    @property
    def edge_fraction(self) -> float:
        if self.source_num_edges == 0:
            return 0.0
        return self.graph.num_edges / self.source_num_edges

    @property
    def queryable_fraction(self) -> float:
        return self.retained.size / max(1, self.source_num_vertices)

    def is_queryable(self, v: int) -> bool:
        return self.vertex_map[v] >= 0

    def translate_values(self, reduced_vals: np.ndarray,
                         fill: float) -> np.ndarray:
        """Expand reduced-graph values back to original vertex ids.

        Eliminated vertices receive ``fill`` (they have no answer).
        """
        out = np.full(self.source_num_vertices, fill, dtype=np.float64)
        out[self.retained] = reduced_vals
        return out


def build_reduced_graph(
    g: Graph, spec: QuerySpec, max_rounds: int = 10
) -> ReducedGraph:
    """Apply degree-0 pruning and chain splicing until a fixed point."""
    if spec.multi_source:
        raise ValueError("input reduction targets single-source queries")
    weights = spec.weight_transform(g.edge_weights())
    src = g.edge_sources().copy()
    dst = g.dst.copy()
    weights = weights.copy()
    n = g.num_vertices
    alive = np.ones(n, dtype=bool)

    for _ in range(max_rounds):
        changed = False
        out_deg = np.bincount(src, minlength=n)
        in_deg = np.bincount(dst, minlength=n)
        # Degree-0 pruning.
        isolated = alive & (out_deg == 0) & (in_deg == 0)
        if isolated.any():
            alive[isolated] = False
            changed = True
        # Chain splicing: in-degree 1, out-degree 1, not a self-cycle.
        chain = alive & (out_deg == 1) & (in_deg == 1)
        if chain.any():
            # Locate each chain vertex's unique in- and out-edge.
            in_edge = np.full(n, -1, dtype=np.int64)
            out_edge = np.full(n, -1, dtype=np.int64)
            for e in range(src.size):
                if chain[dst[e]]:
                    in_edge[dst[e]] = e
                if chain[src[e]]:
                    out_edge[src[e]] = e
            spliced = np.zeros(src.size, dtype=bool)
            new_edges = []
            for v in np.flatnonzero(chain):
                e_in, e_out = int(in_edge[v]), int(out_edge[v])
                if e_in < 0 or e_out < 0 or spliced[e_in] or spliced[e_out]:
                    continue
                u, w_vertex = int(src[e_in]), int(dst[e_out])
                if u == v or w_vertex == v or u == w_vertex:
                    continue  # would create a self-loop; keep the chain
                combined = float(
                    spec.propagate(
                        np.asarray([weights[e_in]]),
                        np.asarray([weights[e_out]]),
                    )[0]
                )
                spliced[e_in] = spliced[e_out] = True
                alive[v] = False
                new_edges.append((u, w_vertex, combined))
                changed = True
            if new_edges:
                keep = ~spliced
                src = np.concatenate(
                    [src[keep], [e[0] for e in new_edges]]
                ).astype(np.int64)
                dst = np.concatenate(
                    [dst[keep], [e[1] for e in new_edges]]
                ).astype(np.int64)
                weights = np.concatenate(
                    [weights[keep], [e[2] for e in new_edges]]
                )
        if not changed:
            break

    retained = np.flatnonzero(alive)
    vertex_map = np.full(n, -1, dtype=np.int64)
    vertex_map[retained] = np.arange(retained.size)
    reduced = from_arrays(
        retained.size, vertex_map[src], vertex_map[dst], weights
    )
    return ReducedGraph(
        graph=reduced,
        vertex_map=vertex_map,
        retained=retained,
        spec_name=spec.name,
        source_num_edges=g.num_edges,
        source_num_vertices=n,
    )
