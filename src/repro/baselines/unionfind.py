"""Array-based union-find with path halving (used by the AG construction)."""

from __future__ import annotations

import numpy as np


class UnionFind:
    """Disjoint sets over ``0..n-1`` with union-by-size and path halving."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)
        self.num_components = n

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = int(parent[x])
        return x

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.num_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)
