"""Prior proxy-graph baselines the paper compares against (§3.4)."""

from repro.baselines.abstraction import build_abstraction_graph
from repro.baselines.sampled import build_sampled_graph
from repro.baselines.reduced import build_reduced_graph, ReducedGraph
from repro.baselines.unionfind import UnionFind

__all__ = [
    "build_abstraction_graph",
    "build_sampled_graph",
    "build_reduced_graph",
    "ReducedGraph",
    "UnionFind",
]
