"""Sampled Graph baseline: random-walk edge sampling (paper §3.4).

"We generated Sampled Graphs (SGs) using random walks [KnightKing, SOSP '19]
and used them in place of CGs" — walks start at random vertices and the
traversed edges are kept until the edge budget is reached. Sampling
preserves global degree statistics but not the well-connectedness arbitrary
queries need, which is why its precision is the lowest of the three proxy
kinds (Table 16).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import Graph
from repro.graph.transform import edge_subgraph


def build_sampled_graph(
    g: Graph,
    budget_edges: int,
    walk_length: int = 32,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[Graph, np.ndarray]:
    """Random-walk sample of at most ``budget_edges`` distinct edges.

    Walks restart at a uniformly random vertex on dead ends or walk-length
    expiry. Returns ``(sg, edge_mask)``; the SG keeps all vertices.
    """
    if budget_edges < 0:
        raise ValueError("budget_edges must be non-negative")
    rng = rng or np.random.default_rng(seed)
    m = g.num_edges
    budget = min(budget_edges, m)
    mask = np.zeros(m, dtype=bool)
    taken = 0
    out_deg = g.out_degree()
    startable = np.flatnonzero(out_deg > 0)
    if startable.size == 0 or budget == 0:
        return edge_subgraph(g, mask), mask

    # Hard cap on total steps so a tiny reachable edge set cannot loop the
    # walk forever while the budget stays unfilled.
    max_steps = 50 * budget + 1000
    steps = 0
    u = int(rng.choice(startable))
    remaining = walk_length
    while taken < budget and steps < max_steps:
        steps += 1
        deg = int(out_deg[u])
        if deg == 0 or remaining == 0:
            u = int(rng.choice(startable))
            remaining = walk_length
            continue
        k = int(rng.integers(deg))
        edge_idx = int(g.offsets[u]) + k
        if not mask[edge_idx]:
            mask[edge_idx] = True
            taken += 1
        u = int(g.dst[edge_idx])
        remaining -= 1
    return edge_subgraph(g, mask), mask
