"""Abstraction Graph baseline (Wonderland, ASPLOS '18), per paper §3.4.

"The algorithm orders the edges according to increasing edge weights. First,
[a] pass over the edges adds those edges to the AG that connect two weakly
connected components. Next pass includes additional edges till [the] upper
limit on [the] number of allowed edges is reached — once again preference is
given to lower weight edges."

For a fair comparison the paper sizes the AG to the corresponding CG's edge
count (and also evaluates a doubled budget, Table 15).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.baselines.unionfind import UnionFind
from repro.graph.csr import Graph
from repro.graph.transform import edge_subgraph


def build_abstraction_graph(
    g: Graph, budget_edges: int
) -> Tuple[Graph, np.ndarray]:
    """Build an AG of at most ``budget_edges`` edges.

    Returns ``(ag, edge_mask)`` where ``edge_mask`` marks the retained edges
    in ``g``'s CSR order. The AG keeps all vertices.
    """
    if budget_edges < 0:
        raise ValueError("budget_edges must be non-negative")
    m = g.num_edges
    budget = min(budget_edges, m)
    weights = g.edge_weights()
    order = np.argsort(weights, kind="stable")
    mask = np.zeros(m, dtype=bool)
    src = g.edge_sources()

    # Pass 1: lightest-first spanning pass over weak connectivity.
    uf = UnionFind(g.num_vertices)
    taken = 0
    for idx in order:
        if taken >= budget:
            break
        u, v = int(src[idx]), int(g.dst[idx])
        if uf.union(u, v):
            mask[idx] = True
            taken += 1

    # Pass 2: fill the remaining budget with the lightest unused edges.
    if taken < budget:
        remaining = order[~mask[order]]
        extra = remaining[: budget - taken]
        mask[extra] = True

    return edge_subgraph(g, mask), mask
