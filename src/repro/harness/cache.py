"""Process-wide caches for graphs, core graphs, sources, and ground truth.

Core-graph identification is a once-per-(graph, query-kind) cost in the
paper ("identified once and then ... used to evaluate all future queries"),
so the harness mirrors that: every experiment and benchmark in one process
shares the same built artifacts.

The caches are thread-safe and single-flight: concurrent service workers
(see :mod:`repro.serve`) asking for the same artifact serialize on one
lock, so an entry is built exactly once and a reader can never observe a
half-built entry or race an eviction. Builds happen inside the lock —
deliberate, because two threads racing a CG build would each pay the full
identification cost only for one result to be discarded.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.coregraph import CoreGraph
from repro.core.dispatch import build_cg
from repro.datasets.zoo import load_zoo_graph
from repro.engines.frontier import evaluate_query
from repro.graph.csr import Graph
from repro.harness.config import default_config
from repro.queries.base import QuerySpec
from repro.queries.registry import cg_spec_for, get_spec

_GRAPHS: Dict[str, Graph] = {}
_CGS: Dict[Tuple[str, str, int], CoreGraph] = {}
_SOURCES: Dict[Tuple[str, int, int], np.ndarray] = {}
_TRUTH: Dict[Tuple[str, str, Optional[int]], np.ndarray] = {}

#: One reentrant lock guards every cache dict (get_cg's build recurses
#: into get_graph, hence reentrant).
_LOCK = threading.RLock()


def clear_caches() -> None:
    """Drop everything (tests use this to stay independent)."""
    with _LOCK:
        _GRAPHS.clear()
        _CGS.clear()
        _SOURCES.clear()
        _TRUTH.clear()


def get_graph(name: str) -> Graph:
    """The named zoo graph, generated once per process."""
    key = name.upper()
    with _LOCK:
        if key not in _GRAPHS:
            _GRAPHS[key] = load_zoo_graph(key)
        return _GRAPHS[key]


def get_cg(
    graph_name: str, spec: QuerySpec, num_hubs: Optional[int] = None, **kwargs
) -> CoreGraph:
    """The core graph serving ``spec`` on the named graph (cached).

    WCC resolves to REACH's general CG, so both share one cache entry.
    Extra build options (``track_growth`` etc.) bypass the cache.
    """
    if num_hubs is None:
        num_hubs = default_config().num_hubs
    g = get_graph(graph_name)
    target = cg_spec_for(spec)
    if kwargs:
        return build_cg(g, target, num_hubs=num_hubs, **kwargs)
    key = (graph_name.upper(), target.name, num_hubs)
    with _LOCK:
        if key not in _CGS:
            cache_dir = os.environ.get("REPRO_CACHE_DIR")
            if cache_dir:
                # Disk layer under the in-memory one: atomic writes + retried
                # reads via ArtifactCache, keyed by graph shape so a
                # REPRO_SCALE_DELTA change never serves a stale CG.
                from repro.io.artifacts import ArtifactCache

                _CGS[key] = ArtifactCache(cache_dir).core_graph(
                    f"{key[0]}-{target.name}-h{num_hubs}-n{g.num_vertices}",
                    lambda: build_cg(g, target, num_hubs=num_hubs),
                )
            else:
                _CGS[key] = build_cg(g, target, num_hubs=num_hubs)
        return _CGS[key]


def get_sources(
    graph_name: str, k: Optional[int] = None, seed: Optional[int] = None
) -> np.ndarray:
    """``k`` deterministic random query sources with non-zero out-degree."""
    cfg = default_config()
    if k is None:
        k = cfg.num_queries
    if seed is None:
        seed = cfg.source_seed
    key = (graph_name.upper(), k, seed)
    with _LOCK:
        if key not in _SOURCES:
            g = get_graph(graph_name)
            candidates = np.flatnonzero(g.out_degree() > 0)
            rng = np.random.default_rng(seed)
            k_eff = min(k, candidates.size)
            _SOURCES[key] = np.sort(
                rng.choice(candidates, k_eff, replace=False)
            )
        return _SOURCES[key]


def get_truth(graph_name: str, spec_name: str, source: Optional[int]) -> np.ndarray:
    """Converged full-graph values for one query (cached ground truth)."""
    key = (graph_name.upper(), spec_name, source)
    with _LOCK:
        if key not in _TRUTH:
            spec = get_spec(spec_name)
            g = get_graph(graph_name)
            _TRUTH[key] = evaluate_query(g, spec, source)
        return _TRUTH[key]
