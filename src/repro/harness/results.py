"""Persisting experiment results as JSON under the results directory."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.harness.config import default_config
from repro.resilience.atomic import atomic_open


def _jsonable(value):
    if isinstance(value, float):
        return value
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


def save_result(result, results_dir: Optional[Path] = None) -> Path:
    """Write an :class:`ExperimentResult` as ``<id>.json``; returns the path."""
    results_dir = Path(results_dir or default_config().results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"{result.exp_id}.json"
    payload = {
        "id": result.exp_id,
        "title": result.title,
        "paper_reference": result.paper_reference,
        "headers": list(result.headers),
        "rows": _jsonable([list(r) for r in result.rows]),
        "notes": result.notes,
        "config": _jsonable(result.config),
    }
    # Atomic so an interrupted `run --save` can't leave a torn JSON that
    # later poisons `summarize`.
    with atomic_open(path) as fh:
        json.dump(payload, fh, indent=2)
    return path
