"""Command-line entry point: ``repro-coregraph``.

Examples::

    repro-coregraph list
    repro-coregraph run table04 table05
    repro-coregraph run all --save
    repro-coregraph info FR
    repro-coregraph build FR SSSP --out fr-sssp.npz
    repro-coregraph build my_edges.txt SSSP --out my-cg.npz
    repro-coregraph query FR SSSP 42 --cg fr-sssp.npz --triangle

Every subcommand accepts the telemetry flags ``--trace PATH`` (write a
JSONL run journal: manifest line, span/iteration/event lines, final
metrics snapshot) and ``--metrics`` (print span and metrics summary
tables on exit)::

    repro-coregraph query FR SSSP 42 --cg fr-sssp.npz --trace run.jsonl
    repro-coregraph build FR SSSP --metrics

The ``obs`` family analyzes journals after the fact::

    repro-coregraph obs report run.jsonl --html report.html
    repro-coregraph obs diff old.jsonl new.jsonl
    repro-coregraph obs baseline run.jsonl --out benchmarks/baselines/x.json
    repro-coregraph obs check run.jsonl --baseline benchmarks/baselines/ \\
        --fail-on-regress
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.harness.config import default_config
from repro.resilience.atomic import atomic_write_text
from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.results import save_result


def _cmd_list(_args) -> int:
    for exp_id in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[exp_id].__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{exp_id:10s} {summary}")
    return 0


def _cmd_run(args) -> int:
    ids: List[str] = args.experiments
    if ids == ["all"]:
        ids = sorted(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    config = default_config()
    for exp_id in ids:
        start = time.perf_counter()
        result = run_experiment(exp_id, config)
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"[{exp_id} completed in {elapsed:.1f}s]\n")
        if args.save:
            path = save_result(result)
            print(f"saved -> {path}\n")
    return 0


def _cmd_info(args) -> int:
    from repro.datasets.zoo import zoo_entry
    from repro.harness.cache import get_graph

    entry = zoo_entry(args.graph)
    g = get_graph(args.graph)
    print(f"{entry.name}: stand-in for paper graph with "
          f"|E|={entry.paper_edges:,}, |V|={entry.paper_vertices:,}")
    print(f"  generated: {g}")
    print(f"  R-MAT scale={entry.scale} edge_factor={entry.edge_factor} "
          f"params={entry.params} weights={entry.weight_scheme}")
    return 0


def _resolve_graph(name_or_path: str):
    """A zoo name (FR, TT, ...) or a path to an edge list / .npz graph."""
    from pathlib import Path

    from repro.datasets.zoo import ZOO
    from repro.harness.cache import get_graph

    if name_or_path.upper() in ZOO:
        g = get_graph(name_or_path)
        _emit_graph_loaded(name_or_path.upper(), g)
        return g
    path = Path(name_or_path)
    if not path.exists():
        raise SystemExit(
            f"'{name_or_path}' is neither a zoo graph ({sorted(ZOO)}) "
            "nor an existing file"
        )
    if path.suffix == ".npz":
        from repro.io.binary import load_graph

        g = load_graph(path)
    else:
        from repro.graph.edgelist import read_edge_list

        g = read_edge_list(path)
    _emit_graph_loaded(name_or_path, g)
    return g


def _emit_graph_loaded(name: str, g) -> None:
    """Record the resolved graph's shape in the journal (if tracing).

    The content fingerprint also becomes ambient journal context, so
    every downstream result event is stamped with the exact graph bytes
    it was computed on and ``obs compare`` can refuse to diff runs whose
    "same" graph drifted between recordings.
    """
    from repro.obs import journal as obs_journal

    fingerprint = g.fingerprint()
    obs_journal.set_global_context(graph_fingerprint=fingerprint)
    obs_journal.emit(
        {
            "type": "event",
            "name": "graph.loaded",
            "graph": name,
            "num_vertices": int(g.num_vertices),
            "num_edges": int(g.num_edges),
            "graph_fingerprint": fingerprint,
        }
    )


def _cmd_build(args) -> int:
    import time

    from repro.core.dispatch import build_cg
    from repro.io.binary import save_core_graph
    from repro.queries.registry import get_spec

    g = _resolve_graph(args.graph)
    spec = get_spec(args.query)
    start = time.perf_counter()
    cg = build_cg(g, spec, num_hubs=args.hubs)
    elapsed = time.perf_counter() - start
    print(f"{cg}")
    print(f"identified in {elapsed:.2f}s from {len(cg.hubs)} hubs "
          f"({cg.connectivity_edges} connectivity edges added)")
    if args.out:
        path = save_core_graph(cg, args.out)
        print(f"saved -> {path}")
    return 0


def _cmd_query(args) -> int:
    import time

    import numpy as np

    from repro.core.twophase import two_phase
    from repro.engines.frontier import evaluate_query
    from repro.queries.registry import get_spec
    from repro.resilience.anytime import CERT_EXACT, summarize_certificate
    from repro.resilience.budget import Budget, BudgetExceeded

    g = _resolve_graph(args.graph)
    spec = get_spec(args.query)
    source = None if spec.multi_source else args.source
    if source is None and not spec.multi_source:
        raise SystemExit(f"{spec.name} needs a source vertex")
    if (args.checkpoint or args.resume) and not args.cg:
        raise SystemExit("--checkpoint/--resume require --cg")

    truth = None
    if not args.no_direct:
        start = time.perf_counter()
        truth = evaluate_query(g, spec, source)
        direct_time = time.perf_counter() - start
        reached = (int(spec.reached(truth).sum()) if not spec.multi_source
                   else g.num_vertices)
        print(f"direct evaluation: {direct_time * 1e3:.1f} ms, "
              f"{reached} vertices reached")

    if args.cg:
        from repro.io.binary import load_core_graph

        cg = load_core_graph(args.cg)
        budget = None
        if args.deadline is not None or args.max_iters is not None:
            budget = Budget(deadline_s=args.deadline,
                            max_iterations=args.max_iters)
        start = time.perf_counter()
        try:
            res = two_phase(
                g, cg, spec, source, triangle=args.triangle,
                budget=budget, anytime=args.anytime,
                checkpoint_path=args.checkpoint,
                checkpoint_every=args.checkpoint_every,
                resume=args.resume,
            )
        except BudgetExceeded as exc:
            info = exc.as_dict()
            print(f"budget exceeded: {info['limit']} at {info['site']} "
                  f"(iteration {info['iteration']}, "
                  f"{info['elapsed_s']:.3f}s elapsed); "
                  "re-run with --anytime for a partial result",
                  file=sys.stderr)
            return 3
        cg_time = time.perf_counter() - start
        if res.degraded:
            info = res.budget_error.as_dict()
            print(f"2phase via CG: {cg_time * 1e3:.1f} ms, DEGRADED "
                  f"({info['limit']} at {info['site']}), "
                  f"impacted={res.impacted}, "
                  f"certified={res.certified_precise}")
            print(summarize_certificate(res.certificate))
            if truth is not None:
                exact_mask = res.certificate == CERT_EXACT
                certified_ok = bool(np.array_equal(
                    res.values[exact_mask], truth[exact_mask]
                ))
                print(f"certified-exact vertices match ground truth: "
                      f"{certified_ok}")
                if not certified_ok:
                    return 1
        elif truth is not None:
            exact = bool(np.array_equal(res.values, truth))
            print(f"2phase via CG: {cg_time * 1e3:.1f} ms, exact={exact}, "
                  f"impacted={res.impacted}, "
                  f"certified={res.certified_precise}")
            if not exact:
                return 1
        else:
            print(f"2phase via CG: {cg_time * 1e3:.1f} ms, "
                  f"impacted={res.impacted}, "
                  f"certified={res.certified_precise}")
    return 0


def _cmd_queries(_args) -> int:
    """Describe every supported query kind (the Table 6 contract)."""
    from repro.queries.registry import ALL_SPECS, EXTENDED_SPECS, cg_spec_for

    header = (f"{'query':8s} {'select':6s} {'combine ⊕':18s} "
              f"{'weights':7s} {'CG algorithm':12s} {'serves/notes'}")
    print(header)
    print("-" * len(header))
    combine = {
        "SSSP": "Val(u) + w", "BFS": "Val(u) + 1",
        "SSNP": "max(Val(u), w)", "SSWP": "min(Val(u), w)",
        "Viterbi": "Val(u) * p(w)", "REACH": "Val(u)", "WCC": "Val(u)",
    }
    for spec in EXTENDED_SPECS:
        notes = []
        if cg_spec_for(spec) is not spec:
            notes.append(f"uses {cg_spec_for(spec).name}'s CG")
        if spec.symmetric:
            notes.append("undirected view")
        if spec not in ALL_SPECS:
            notes.append("extension beyond the paper's six")
        print(f"{spec.name:8s} {spec.selection.value:6s} "
              f"{combine.get(spec.name, '?'):18s} "
              f"{'yes' if spec.uses_weights else 'no':7s} "
              f"{spec.identification:12s} {'; '.join(notes)}")
    return 0


def _cmd_stats(args) -> int:
    """Characterize any graph: summary statistics + effective diameter."""
    from repro.analysis.diameter import estimate_effective_diameter
    from repro.analysis.stats import graph_summary

    g = _resolve_graph(args.graph)
    summary = graph_summary(g)
    for key, val in summary.as_dict().items():
        if isinstance(val, float):
            print(f"{key:18s} {val:.4f}")
        else:
            print(f"{key:18s} {val}")
    est = estimate_effective_diameter(g, samples=args.samples)
    print(f"{'effective_diam_90':18s} {est.effective_90:.1f}")
    print(f"{'max_hop_observed':18s} {est.max_observed}")
    if summary.degree_gini > 0.4:
        print("verdict: power-law regime — core graphs should work well")
    else:
        print("verdict: low degree skew — see the paper's Limitations; "
              "calibrate with CoreGraphAdvisor before relying on a CG")
    return 0


def _cmd_summarize(args) -> int:
    """Compile saved results/*.json into one markdown report."""
    import json
    from pathlib import Path

    from repro.harness.tables import render_table

    results_dir = Path(args.dir)
    paths = sorted(results_dir.glob("*.json"))
    if not paths:
        print(f"no results under {results_dir}", file=sys.stderr)
        return 1
    lines = ["# Measured results", ""]
    for path in paths:
        payload = json.loads(path.read_text())
        lines.append(f"## {payload['id']} — {payload['title']}")
        lines.append(f"*{payload['paper_reference']}*")
        lines.append("")
        lines.append("```")
        lines.append(render_table(payload["headers"], payload["rows"]))
        lines.append("```")
        if payload.get("notes"):
            lines.append(f"Note: {payload['notes']}")
        lines.append("")
    out = Path(args.out) if args.out else results_dir / "SUMMARY.md"
    atomic_write_text(out, "\n".join(lines) + "\n")
    print(f"summarized {len(paths)} results -> {out}")
    return 0


def _cmd_check(args) -> int:
    """Static analysis, race analysis, noqa audit, sanitized smoke."""
    from repro.checks.cli import (
        run_races,
        run_sanitize_smoke,
        run_static,
        run_strict_noqa,
    )

    static = args.static or not (
        args.races or args.strict_noqa or args.sanitize_run
    )
    rc = 0
    if static:
        rc = run_static(args.paths or None, rules=args.rules,
                        with_ruff=args.ruff, with_mypy=args.mypy,
                        as_json=args.as_json)
    if args.races:
        rc = run_races(args.paths or None, rules=args.rules,
                       as_json=args.as_json) or rc
    if args.strict_noqa:
        rc = run_strict_noqa(args.paths or None,
                             as_json=args.as_json) or rc
    if args.sanitize_run:
        rc = run_sanitize_smoke() or rc
    return rc


def _cmd_serve(args) -> int:
    """Self-checking smoke of the concurrent query service.

    Bursts ``--requests`` queries at a :class:`repro.serve.QueryService`
    over one shared (graph, CG) pair, drains, and verifies the chaos
    invariant: every submitted request resolved (``lost == 0``). Exit 1
    when any request was lost or never resolved — the CI chaos step runs
    this under ``REPRO_FAULTS`` worker kills and ``REPRO_SANITIZE=1``.

    With ``--mutate-stream`` the service runs in live-graph mode: a
    writer thread applies insert/delete batches through an
    :class:`repro.evolve.EpochMaintainer` while the burst is in flight,
    a :class:`repro.evolve.RebuildSupervisor` refreshes the CG in the
    background, and the summary additionally asserts ``torn=0`` (no
    request ever observed a mixed graph/CG pair) and that every answer
    computed on a superseded epoch carried a staleness certificate.
    """
    import threading
    import time

    from repro.harness.cache import get_cg, get_graph, get_sources
    from repro.queries.registry import get_spec
    from repro.serve import QueryService, ServiceConfig

    if not args.smoke:
        print(
            "the query service is in-process (a library, not a daemon); "
            "run `repro-coregraph serve --smoke` for the self-checking "
            "demo, or use repro.serve.QueryService directly",
            file=sys.stderr,
        )
        return 2
    spec = get_spec(args.query)
    g = get_graph(args.graph)
    _emit_graph_loaded(args.graph.upper(), g)
    sources = get_sources(args.graph, k=min(args.requests, 16))
    cfg = ServiceConfig(
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        default_deadline_s=args.deadline,
        default_max_iterations=args.max_iters,
        breaker_failure_threshold=args.breaker_failures,
        breaker_cooldown_s=args.cooldown,
    )
    maintainer = supervisor = churn_thread = None
    stop_churn = threading.Event()
    churn_stats = {"batches": 0, "rolled_back": 0}
    if args.mutate_stream:
        from repro.evolve import (
            EpochMaintainer,
            RebuildSupervisor,
            next_batch,
        )
        from repro.resilience.faults import InjectedFault

        if args.wal:
            maintainer = _open_durable_maintainer(args, g, spec)
        else:
            maintainer = EpochMaintainer(g, spec, num_hubs=args.hubs)
        supervisor = RebuildSupervisor(
            maintainer, poll_interval_s=args.mutate_interval
        )
        svc = QueryService(
            config=cfg, epochs=maintainer.store, maintainer=maintainer
        )

        def churn() -> None:
            step = 0
            while not stop_churn.is_set():
                batch = next_batch(
                    maintainer.graph, step,
                    batch_size=args.mutate_batch,
                    delete_fraction=args.delete_fraction,
                    seed=11,
                )
                try:
                    maintainer.apply(batch.inserts, batch.deletes)
                    churn_stats["batches"] += 1
                except InjectedFault:
                    # The maintainer restored its state; the batch is
                    # simply lost, which is the crash semantics under
                    # test — keep the storm going.
                    churn_stats["rolled_back"] += 1
                step += 1
                stop_churn.wait(args.mutate_interval)

        churn_thread = threading.Thread(
            target=churn, name="serve-churn", daemon=True
        )
    else:
        cg = get_cg(args.graph, spec)
        svc = QueryService(g, cg, cfg)
    start = time.perf_counter()
    with svc:
        if supervisor is not None:
            supervisor.start()
        if churn_thread is not None:
            churn_thread.start()
        if args.export_port is not None:
            exporter = svc.start_exporter(port=args.export_port)
            print(f"exporter: {exporter.url('/metrics')} "
                  f"(/healthz, /statz)", flush=True)
        tickets = [
            svc.submit(
                spec.name,
                source=(
                    None if spec.multi_source
                    else int(sources[i % len(sources)])
                ),
                priority=i % 3,
            )
            for i in range(args.requests)
        ]
        drained = svc.drain(timeout=args.timeout)
        elapsed = time.perf_counter() - start
        stop_churn.set()
        if churn_thread is not None:
            churn_thread.join(timeout=5.0)
        if supervisor is not None:
            supervisor.stop()
        if args.export_port is not None and args.linger > 0:
            # Keep the endpoints up for outside scrapers (the CI smoke
            # curls /metrics while the drained service lingers).
            print(f"lingering {args.linger:.0f}s for scrapers...",
                  flush=True)
            time.sleep(args.linger)
    stats = svc.stats()
    print(stats.render())
    unresolved = sum(1 for t in tickets if not t.done())
    print(
        f"serve smoke: {args.requests} requests in {elapsed:.2f}s "
        f"({args.requests / elapsed:.1f}/s), lost={stats.lost}, "
        f"unresolved={unresolved}"
    )
    failed = stats.lost != 0 or unresolved or not drained
    if maintainer is not None:
        # Live-graph invariants. A sanitizer epoch_integrity violation
        # kills the worker mid-request, so a torn epoch surfaces as a
        # failed outcome naming the probe — zero of those means no
        # request ever saw a mixed graph/CG pair. Every answer from a
        # superseded epoch must have carried a certificate.
        outcomes = [t.result(0) for t in tickets if t.done()]
        torn = sum(
            1 for o in outcomes
            if o.error is not None and "epoch_integrity" in o.error
        )
        certified = sum(1 for o in outcomes if o.staleness is not None)
        maintainer.emit_stats()
        if maintainer.wal is not None:
            info = maintainer.durability()
            wstats = maintainer.wal.stats()
            print(
                f"durability: wal fsync={info['fsync']} "
                f"appends={wstats['appends']} fsyncs={wstats['fsyncs']} "
                f"segments={wstats['segments']} "
                f"(compacted {wstats['compacted_segments']})"
            )
            maintainer.wal.close()
        print(
            f"mutate stream: epoch={stats.graph_epoch}, "
            f"batches={churn_stats['batches']} "
            f"(+{churn_stats['rolled_back']} rolled back), "
            f"rebuilds={supervisor.stats.rebuilds}, "
            f"restarts={supervisor.stats.supervisor_restarts}, "
            f"torn={torn}, stale={stats.stale_answers}, "
            f"certified={certified}"
        )
        if torn != 0 or certified != stats.stale_answers:
            print(
                "serve smoke FAILED: torn epoch observed or an "
                "uncertified stale answer was served", file=sys.stderr,
            )
            failed = True
    if failed:
        print("serve smoke FAILED: requests were lost or never resolved",
              file=sys.stderr)
        return 1
    return 0


def _open_durable_maintainer(args, g, spec):
    """Recover-or-create an :class:`EpochMaintainer` behind ``--wal DIR``.

    An existing log (segments or snapshots present) is recovered and
    resumed — the crash→restart sequence the CI chaos job drives; an
    empty directory starts a fresh durable maintainer whose epoch 0
    snapshot anchors future recoveries.
    """
    from pathlib import Path

    from repro.evolve import EpochMaintainer, WalWriter, recover
    from repro.evolve.snapshot import SnapshotStore
    from repro.evolve.wal import list_segments

    wal_dir = Path(args.wal)
    existing = (
        list_segments(wal_dir)
        or SnapshotStore(wal_dir / "snapshots").paths()
    )
    if existing:
        maintainer, report = recover(
            wal_dir, spec, num_hubs=args.hubs, fsync=args.fsync,
            snapshot_every=args.snapshot_every,
        )
        print(report.render())
        return maintainer
    maintainer = EpochMaintainer(
        g, spec, num_hubs=args.hubs,
        wal=WalWriter(wal_dir, fsync=args.fsync),
        snapshot_every=args.snapshot_every,
    )
    info = maintainer.durability()
    print(f"durability: wal dir={info['dir']} fsync={info['fsync']} "
          f"snapshot_every={info.get('snapshot_every')}")
    return maintainer


def _cmd_evolve_recover(args) -> int:
    """Rebuild the pre-crash epoch from a WAL directory and report it.

    Exits non-zero when recovery cannot reach a consistent epoch: mid-log
    corruption (typed ``CorruptWalError``), no usable snapshot, or — under
    ``--verify`` — any fingerprint mismatch between a replayed epoch and
    its WAL record.
    """
    from repro.evolve import (
        CorruptWalError,
        RecoveryError,
        recover,
    )
    from repro.queries.registry import get_spec

    spec = get_spec(args.recover_query) if args.recover_query else None
    try:
        _, report = recover(
            args.path, spec,
            verify=args.verify,
            to_epoch=args.to_epoch,
            num_hubs=args.hubs,
            attach=False,
        )
    except (CorruptWalError, RecoveryError) as exc:
        print(f"recover FAILED: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    return 0


def _cmd_evolve(args) -> int:
    """Live-graph demo: churn an evolving CG, probe, optionally rebuild.

    Applies ``--batches`` insert/delete batches through an
    :class:`repro.evolve.EpochMaintainer` (each publishing a new epoch),
    prints the epoch history with probe precision, and — with
    ``--rebuild`` — runs a supervised background rebuild under a budget
    with checkpointed progress. Exits 1 if the final epoch's 2Phase
    answer is not exact against a from-scratch evaluation.
    """
    import time

    import numpy as np

    from repro.core.twophase import two_phase
    from repro.engines.frontier import evaluate_query
    from repro.evolve import EpochMaintainer, RebuildSupervisor, next_batch
    from repro.harness.cache import get_graph, get_sources
    from repro.queries.registry import get_spec
    from repro.resilience.budget import Budget

    spec = get_spec(args.query)
    g = get_graph(args.graph)
    _emit_graph_loaded(args.graph.upper(), g)
    t0 = time.perf_counter()
    if args.wal:
        maintainer = _open_durable_maintainer(args, g, spec)
    else:
        maintainer = EpochMaintainer(g, spec, num_hubs=args.hubs)
    built = time.perf_counter() - t0
    epoch0 = maintainer.store.current()
    print(
        f"epoch {epoch0.number}: {epoch0.graph.num_edges} edges, "
        f"CG {epoch0.proxy.num_edges} edges "
        f"({args.hubs} hubs, ready in {built:.2f}s)"
    )
    for step in range(args.batches):
        batch = next_batch(
            maintainer.graph, step,
            batch_size=args.batch_size,
            delete_fraction=args.delete_fraction,
            seed=args.seed,
        )
        epoch = maintainer.apply(batch.inserts, batch.deletes)
        print(
            f"epoch {epoch.number}: +{len(batch.inserts)} "
            f"-{len(batch.deletes)} edges "
            f"(cumulative +{epoch.inserted_edges} -{epoch.deleted_edges}), "
            f"CG {epoch.proxy.num_edges} edges, "
            f"triangle_safe={epoch.triangle_safe}"
        )
    precision = maintainer.probe()
    print(f"probe precision after churn: {precision:.1f}%")
    if args.rebuild:
        supervisor = RebuildSupervisor(
            maintainer,
            poll_interval_s=0.01,
            budget_factory=(
                None if args.deadline is None
                else lambda: Budget(deadline_s=args.deadline)
            ),
            checkpoint_path=args.checkpoint,
        )
        supervisor.request_rebuild()
        supervisor.start()
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            with supervisor.stats._lock:
                done = supervisor.stats.rebuilds > 0
            if done:
                break
            time.sleep(0.02)
        supervisor.stop()
        print(f"rebuild: {supervisor.describe()}")
        epoch = maintainer.store.current()
        print(
            f"epoch {epoch.number}: CG {epoch.proxy.num_edges} edges, "
            f"triangle_safe={epoch.triangle_safe} "
            f"(rebuilt from snapshot of epoch {epoch.rebuilt_from})"
        )
        print(f"probe precision after rebuild: {maintainer.probe():.1f}%")
    maintainer.emit_stats()
    if maintainer.wal is not None:
        maintainer.wal.close()
    final = maintainer.store.current()
    source = int(get_sources(args.graph, k=1)[0])
    res = two_phase(final.graph, final.proxy, spec,
                    None if spec.multi_source else source)
    baseline = evaluate_query(final.graph, spec,
                              None if spec.multi_source else source)
    exact = bool(np.allclose(res.values, baseline, equal_nan=True))
    print(f"2Phase on epoch {final.number} exact vs from-scratch: {exact}")
    return 0 if exact else 1


def _cmd_obs_report(args) -> int:
    """Render one journal as a terminal (and optionally HTML/JSON) report."""
    import json

    from repro.obs.journal import read_events
    from repro.obs.report import render_html, render_report, report_payload

    events = read_events(args.journal)
    print(render_report(events, source=str(args.journal)))
    if args.html:
        path = render_html(events, args.html, source=str(args.journal))
        print(f"\nhtml report -> {path}")
    if args.json:
        from repro.resilience.atomic import atomic_write_text

        payload = report_payload(events, source=str(args.journal))
        atomic_write_text(args.json, json.dumps(payload, indent=2) + "\n")
        print(f"json report -> {args.json}")
    return 0


def _cmd_obs_trace(args) -> int:
    """Render one request's causal trace; list/pick traces without an id.

    Exits 1 when the requested trace has orphan spans (a span naming a
    parent that never journaled) — the CI trace round-trip smoke treats a
    broken causal chain as a failure, not a cosmetic defect.
    """
    from repro.obs.journal import read_events
    from repro.obs.traceview import (
        build_tree, find_explain, pick_trace, render_trace,
        render_trace_html, render_trace_table, summarize_traces,
    )

    events = read_events(args.journal)
    if args.pick is not None:
        tid = pick_trace(events, status=args.pick)
        if tid is None:
            print(f"no trace with status {args.pick!r}", file=sys.stderr)
            return 2
        print(tid)
        return 0
    if args.trace_id is None:
        print(render_trace_table(summarize_traces(events)))
        return 0
    tree = build_tree(events, args.trace_id)
    if not tree.roots and not tree.orphans:
        print(f"no spans for trace {args.trace_id} in {args.journal}",
              file=sys.stderr)
        return 2
    print(render_trace(tree))
    if args.html:
        path = render_trace_html(
            tree, args.html, explain=find_explain(events, args.trace_id)
        )
        print(f"\nhtml trace -> {path}")
    if tree.orphans:
        print(f"\ntrace {args.trace_id} has {len(tree.orphans)} orphan "
              f"span(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_obs_explain(args) -> int:
    """Render the explain record (wide event) of one traced request."""
    from repro.obs.journal import read_events
    from repro.obs.traceview import find_explain
    from repro.serve.explain import render_explain

    events = read_events(args.journal)
    payload = find_explain(events, args.trace_id)
    if payload is None:
        print(f"no serve.explain event for trace {args.trace_id} in "
              f"{args.journal}", file=sys.stderr)
        return 2
    print(render_explain(payload))
    return 0


def _cmd_obs_diff(args) -> int:
    """Compare two journals; exit 1 when the newer run regressed."""
    from repro.obs.compare import Thresholds, compare, regressions, summarize_run
    from repro.obs.report import render_diff

    base = summarize_run(args.journal_a, source=str(args.journal_a))
    new = summarize_run(args.journal_b, source=str(args.journal_b))
    deltas = compare(base, new, Thresholds.from_args(args))
    print(render_diff(deltas, base.label() or str(args.journal_a),
                      new.label() or str(args.journal_b)))
    bad = regressions(deltas)
    if bad:
        print(f"\n{len(bad)} regression(s) beyond thresholds")
        return 1
    return 0


def _cmd_obs_baseline(args) -> int:
    """Distill a journal into a committed-baseline JSON file."""
    from repro.obs.compare import summarize_run, write_baseline

    summary = summarize_run(args.journal, source=str(args.journal))
    path = write_baseline(summary, args.out)
    print(f"baseline ({summary.label()}) -> {path}")
    return 0


def _cmd_obs_check(args) -> int:
    """Gate a journal against a committed baseline (file or directory)."""
    from repro.obs.compare import (
        Thresholds, align, compare, drift_skipped, load_baselines,
        regressions, summarize_run,
    )
    from repro.obs.report import render_diff, render_html

    summary = summarize_run(args.journal, source=str(args.journal))
    baselines = load_baselines(args.baseline)
    if not baselines:
        print(f"no baselines under {args.baseline}", file=sys.stderr)
        return 2
    baseline = align(summary, baselines)
    if baseline is None:
        drifted = drift_skipped(summary, baselines)
        if drifted:
            # Same experiment, different graph bytes: a comparison would
            # report phantom regressions, so skip it loudly instead.
            for b in drifted:
                print(
                    f"SKIPPED baseline {b.label()} ({b.source}): graph "
                    f"content drifted (fingerprint "
                    f"{b.key.get('graph_fingerprint', '?')[:12]} vs "
                    f"{summary.key.get('graph_fingerprint', '?')[:12]}); "
                    "re-record the baseline on the current graph",
                    file=sys.stderr,
                )
            return 0
        print(
            f"no baseline matches run key {summary.key} "
            f"(checked {len(baselines)} under {args.baseline})",
            file=sys.stderr,
        )
        return 2
    deltas = compare(baseline, summary, Thresholds.from_args(args))
    print(render_diff(deltas, f"baseline:{baseline.label()}",
                      summary.label() or str(args.journal)))
    if args.html:
        from repro.obs.journal import read_events

        render_html(read_events(args.journal), args.html,
                    source=str(args.journal), deltas=deltas)
        print(f"html report -> {args.html}")
    bad = regressions(deltas)
    if bad:
        print(f"\n{len(bad)} regression(s) vs {baseline.source}:")
        for d in bad:
            print(f"  {d.name}: {d.base:.6g} -> {d.new:.6g}"
                  + (f" ({d.pct:+.1f}%)" if d.pct is not None else ""))
        if args.fail_on_regress:
            return 1
        print("(informational: pass --fail-on-regress to gate on this)")
    else:
        print("\nno regressions vs baseline")
    return 0


def _cmd_obs_top(args) -> int:
    """Live terminal dashboard over a running exporter endpoint."""
    import json
    import re as _re
    import time
    import urllib.error
    import urllib.request

    from repro.obs.live import prom

    base = args.endpoint
    if "://" not in base:
        base = f"http://{base}"
    base = base.rstrip("/")

    def fetch(path: str):
        try:
            with urllib.request.urlopen(
                base + path, timeout=args.timeout
            ) as resp:
                return resp.status, resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read().decode("utf-8", "replace")

    span_series = _re.compile(r'\{.*span="([^"]+)".*\}')
    frames = 0
    while True:
        try:
            health_status, health_body = fetch("/healthz")
            _, metrics_text = fetch("/metrics")
            statz_status, statz_body = fetch("/statz")
        except (urllib.error.URLError, OSError) as exc:
            print(f"cannot scrape {base}: {exc}", file=sys.stderr)
            return 2
        try:
            fams = prom.parse(metrics_text)
        except ValueError as exc:
            print(f"malformed /metrics from {base}: {exc}", file=sys.stderr)
            return 2
        lines = [f"== obs top @ {base} "
                 f"(healthz {health_status}, frame {frames + 1}) =="]
        try:
            health = json.loads(health_body)
            lines.append("health   " + "  ".join(
                f"{k}={v}" for k, v in sorted(health.items())
            ))
        except ValueError:
            pass
        if statz_status == 200:
            statz = json.loads(statz_body)
            keys = ("submitted", "completed", "degraded", "failed",
                    "queue_depth", "lost")
            lines.append("service  " + "  ".join(
                f"{k}={statz[k]}" for k in keys if k in statz
            ))
            p50, p95 = statz.get("latency_p50_ms"), statz.get("latency_p95_ms")
            if p50 is not None:
                lines.append(
                    f"latency  p50={p50:.2f}ms  "
                    f"p95={(p95 if p95 is not None else p50):.2f}ms"
                )
            slo = statz.get("slo") or {}
            for spec in slo.get("specs", ()):
                flag = "FIRING" if spec.get("firing") else "ok"
                lines.append(
                    f"slo      {spec['name']:<16s} burn_long="
                    f"{spec['burn_long']:<8g} burn_short="
                    f"{spec['burn_short']:<8g} {flag}"
                )
        for fam, label in (("proc_rss_bytes", "rss_bytes"),
                           ("proc_threads", "threads"),
                           ("obs_live_exporter_scrapes_total", "scrapes")):
            series = fams.get(fam)
            if series:
                value = next(iter(series.values()))
                lines.append(f"proc     {label}={value:g}")
        counts = fams.get("obs_live_span_ms_count", {})
        sums = fams.get("obs_live_span_ms_sum", {})
        span_rows = []
        for series, count in counts.items():
            m = span_series.search(series)
            if m is None or not count:
                continue
            total = sums.get(series.replace("_count", "_sum"), 0.0)
            span_rows.append((total, m.group(1), int(count)))
        for total, name, count in sorted(span_rows, reverse=True)[:8]:
            lines.append(
                f"span     {name:<24s} n={count:<7d} total={total:.1f}ms"
            )
        if not args.once:
            print("\x1b[2J\x1b[H", end="")
        print("\n".join(lines), flush=True)
        frames += 1
        if args.once:
            return 0
        time.sleep(args.interval)


def _cmd_cache(args) -> int:
    from repro.io.artifacts import ArtifactCache

    cache = ArtifactCache(args.dir)
    if args.clear:
        removed = cache.invalidate()
        print(f"removed {removed} artifacts")
        return 0
    manifest = cache.manifest()
    if not manifest:
        print("cache is empty")
        return 0
    for name, size in manifest.items():
        print(f"{size:>12,}  {name}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-coregraph",
        description="Regenerate the tables and figures of the Core Graph "
        "paper (EuroSys '24) on scaled stand-in graphs.",
    )
    # Telemetry flags ride on every subcommand (argparse only accepts
    # top-level options before the subcommand, which nobody expects).
    tele = argparse.ArgumentParser(add_help=False)
    tele.add_argument("--trace", metavar="PATH", default=None,
                      help="write a JSONL telemetry journal of this run")
    tele.add_argument("--metrics", action="store_true",
                      help="print span/metrics summary tables on exit")
    tele.add_argument("--profile", metavar="PATH", default=None,
                      help="sample stacks for the whole run and write a "
                           "collapsed-stack flamegraph file here (implies "
                           "telemetry, for span attribution)")
    tele.add_argument("--profile-interval", type=float, default=0.005,
                      metavar="SECONDS",
                      help="sampling period for --profile (default 5ms)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser(
        "list", help="list experiment ids", parents=[tele]
    ).set_defaults(func=_cmd_list)
    run_p = sub.add_parser("run", help="run experiments by id (or 'all')",
                           parents=[tele])
    run_p.add_argument("experiments", nargs="+")
    run_p.add_argument("--save", action="store_true",
                       help="write JSON results under the results directory")
    run_p.set_defaults(func=_cmd_run)
    info_p = sub.add_parser("info", help="describe a zoo graph",
                            parents=[tele])
    info_p.add_argument("graph")
    info_p.set_defaults(func=_cmd_info)

    build_p = sub.add_parser(
        "build", help="identify a core graph (zoo name, edge list, or .npz)",
        parents=[tele],
    )
    build_p.add_argument("graph", help="zoo name or path")
    build_p.add_argument("query", help="SSSP/SSNP/Viterbi/SSWP/REACH/WCC")
    build_p.add_argument("--hubs", type=int, default=20)
    build_p.add_argument("--out", help="write the CG as .npz")
    build_p.set_defaults(func=_cmd_build)

    query_p = sub.add_parser(
        "query", help="evaluate a query directly and (optionally) via a CG",
        parents=[tele],
    )
    query_p.add_argument("graph", help="zoo name or path")
    query_p.add_argument("query")
    query_p.add_argument("source", nargs="?", type=int, default=None)
    query_p.add_argument("--cg", help="core graph .npz from 'build'")
    query_p.add_argument("--triangle", action="store_true",
                         help="enable Theorem 1 certificates")
    query_p.add_argument("--deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="wall-clock budget across both 2phase phases")
    query_p.add_argument("--max-iters", type=int, default=None, metavar="N",
                         help="iteration budget across both 2phase phases")
    query_p.add_argument("--anytime", action="store_true",
                         help="on budget abort, return the partial result "
                              "with a per-vertex precision certificate "
                              "instead of failing")
    query_p.add_argument("--checkpoint", metavar="PATH",
                         help="write atomic engine snapshots here "
                              "(requires --cg)")
    query_p.add_argument("--checkpoint-every", type=int, default=1,
                         metavar="N", help="snapshot every N iterations")
    query_p.add_argument("--resume", metavar="PATH",
                         help="resume a killed run from a checkpoint "
                              "(requires --cg)")
    query_p.add_argument("--no-direct", action="store_true",
                         help="skip the direct ground-truth evaluation "
                              "(only the 2phase run executes)")
    query_p.set_defaults(func=_cmd_query)

    cache_p = sub.add_parser("cache", help="inspect or clear an artifact cache",
                             parents=[tele])
    cache_p.add_argument("dir")
    cache_p.add_argument("--clear", action="store_true")
    cache_p.set_defaults(func=_cmd_cache)

    sub.add_parser(
        "queries", help="describe the supported query kinds (Table 6)",
        parents=[tele],
    ).set_defaults(func=_cmd_queries)

    stats_p = sub.add_parser(
        "stats", help="summary statistics + effective diameter of a graph",
        parents=[tele],
    )
    stats_p.add_argument("graph", help="zoo name or path")
    stats_p.add_argument("--samples", type=int, default=6,
                         help="BFS samples for the diameter estimate")
    stats_p.set_defaults(func=_cmd_stats)

    sum_p = sub.add_parser(
        "summarize", help="compile saved results into one markdown report",
        parents=[tele],
    )
    sum_p.add_argument("dir", nargs="?", default="results")
    sum_p.add_argument("--out", help="output path (default <dir>/SUMMARY.md)")
    sum_p.set_defaults(func=_cmd_summarize)

    chk_p = sub.add_parser(
        "check",
        help="static analysis (RC rules) and/or a sanitized smoke run",
        parents=[tele],
    )
    chk_p.add_argument("--static", action="store_true",
                       help="run the RC lint rules (default when no mode "
                            "flag is given)")
    chk_p.add_argument("--races", action="store_true",
                       help="whole-program concurrency analyzer "
                            "(RC101-RC105)")
    chk_p.add_argument("--strict-noqa", action="store_true",
                       dest="strict_noqa",
                       help="fail on stale or unjustified "
                            "'# repro: noqa' suppressions (RC100)")
    chk_p.add_argument("--json", action="store_true", dest="as_json",
                       help="emit violations as one JSON object")
    chk_p.add_argument("--sanitize-run", action="store_true",
                       help="REPRO_SANITIZE smoke: sanitized two_phase of "
                            "every query kind on the example dataset")
    chk_p.add_argument("paths", nargs="*",
                       help="files/directories to lint (default src/repro)")
    chk_p.add_argument("--rule", action="append", dest="rules", metavar="RC",
                       help="restrict lint to specific rule ids (repeatable)")
    chk_p.add_argument("--ruff", action="store_true",
                       help="also run ruff when installed")
    chk_p.add_argument("--mypy", action="store_true",
                       help="also run mypy when installed")
    chk_p.set_defaults(func=_cmd_check)

    serve_p = sub.add_parser(
        "serve",
        help="concurrent query service smoke: burst, drain, verify lost=0",
        parents=[tele],
    )
    serve_p.add_argument("--smoke", action="store_true",
                         help="run the self-checking burst demo")
    serve_p.add_argument("--graph", default="PK", help="zoo graph name")
    serve_p.add_argument("--query", default="SSSP")
    serve_p.add_argument("--requests", type=int, default=48,
                         help="burst size submitted before draining")
    serve_p.add_argument("--workers", type=int, default=4)
    serve_p.add_argument("--queue-capacity", type=int, default=32,
                         help="admission queue bound (excess is shed as "
                              "typed queue_full rejections)")
    serve_p.add_argument("--deadline", type=float, default=None,
                         metavar="SECONDS", help="per-request deadline")
    serve_p.add_argument("--max-iters", type=int, default=None, metavar="N",
                         help="per-request iteration budget")
    serve_p.add_argument("--breaker-failures", type=int, default=3,
                         help="consecutive completion blowups that trip "
                              "the breaker")
    serve_p.add_argument("--cooldown", type=float, default=0.25,
                         metavar="SECONDS", help="breaker cooldown before "
                         "a half-open probe")
    serve_p.add_argument("--timeout", type=float, default=120.0,
                         help="drain timeout before declaring failure")
    serve_p.add_argument("--export-port", type=int, default=None,
                         metavar="PORT",
                         help="serve /metrics, /healthz, /statz on this "
                              "port for the duration (0 = ephemeral)")
    serve_p.add_argument("--linger", type=float, default=0.0,
                         metavar="SECONDS",
                         help="keep the exporter up this long after the "
                              "burst drains (for outside scrapers)")
    serve_p.add_argument("--mutate-stream", action="store_true",
                         help="live-graph mode: apply mutation batches "
                              "concurrently with the burst (epoch-swapped "
                              "double buffering + background CG rebuilds)")
    serve_p.add_argument("--mutate-batch", type=int, default=16,
                         metavar="EDGES",
                         help="edges mutated per batch in --mutate-stream")
    serve_p.add_argument("--delete-fraction", type=float, default=0.25,
                         metavar="FRAC",
                         help="fraction of each mutation batch that "
                              "deletes existing edges")
    serve_p.add_argument("--mutate-interval", type=float, default=0.005,
                         metavar="SECONDS",
                         help="pause between mutation batches (also the "
                              "rebuild supervisor's poll interval)")
    serve_p.add_argument("--hubs", type=int, default=16,
                         help="hubs for the CG built in --mutate-stream "
                              "(static mode reuses the cached CG)")
    serve_p.add_argument("--wal", metavar="DIR", default=None,
                         help="durable live-graph mode: journal every "
                              "acknowledged batch to a WAL under DIR "
                              "(recovers and resumes an existing log)")
    serve_p.add_argument("--fsync", default="always",
                         metavar="POLICY",
                         help="WAL fsync policy: always, never, or "
                              "group[:MS] (default always)")
    serve_p.add_argument("--snapshot-every", type=int, default=8,
                         metavar="N",
                         help="full-graph snapshot every N epochs "
                              "(anchors WAL compaction; 0 disables)")
    serve_p.set_defaults(func=_cmd_serve)

    evolve_p = sub.add_parser(
        "evolve",
        help="live-graph demo: churn batches, probe precision, rebuild",
        parents=[tele],
    )
    evolve_p.add_argument("--graph", default="PK", help="zoo graph name")
    evolve_p.add_argument("--query", default="SSSP")
    evolve_p.add_argument("--batches", type=int, default=10,
                          help="mutation batches to apply")
    evolve_p.add_argument("--batch-size", type=int, default=16,
                          metavar="EDGES", help="edges per batch")
    evolve_p.add_argument("--delete-fraction", type=float, default=0.25,
                          metavar="FRAC")
    evolve_p.add_argument("--hubs", type=int, default=16,
                          help="hubs for the initial and rebuilt CG")
    evolve_p.add_argument("--seed", type=int, default=11,
                          help="mutation stream seed")
    evolve_p.add_argument("--rebuild", action="store_true",
                          help="run a supervised rebuild after the churn")
    evolve_p.add_argument("--checkpoint", metavar="PATH", default=None,
                          help="rebuild progress checkpoint file")
    evolve_p.add_argument("--deadline", type=float, default=None,
                          metavar="SECONDS",
                          help="per-attempt rebuild budget deadline")
    evolve_p.add_argument("--wal", metavar="DIR", default=None,
                          help="journal acknowledged batches to a WAL "
                               "under DIR (recovers an existing log)")
    evolve_p.add_argument("--fsync", default="always", metavar="POLICY",
                          help="WAL fsync policy: always, never, or "
                               "group[:MS] (default always)")
    evolve_p.add_argument("--snapshot-every", type=int, default=8,
                          metavar="N",
                          help="full-graph snapshot every N epochs "
                               "(0 disables periodic snapshots)")
    evolve_p.set_defaults(func=_cmd_evolve)

    evolve_sub = evolve_p.add_subparsers(dest="evolve_cmd")
    recover_p = evolve_sub.add_parser(
        "recover",
        help="replay a WAL directory back to the exact pre-crash epoch",
        parents=[tele],
    )
    recover_p.add_argument("path", help="WAL directory (with snapshots/)")
    recover_p.add_argument("--verify", action="store_true",
                           help="exit non-zero on any fingerprint "
                                "mismatch or internal inconsistency")
    recover_p.add_argument("--to-epoch", type=int, default=None,
                           metavar="N",
                           help="stop the replay at epoch N "
                                "(point-in-time recovery)")
    recover_p.add_argument("--query", dest="recover_query", default=None,
                           help="query spec override (default: the spec "
                                "named in the snapshot)")
    recover_p.add_argument("--hubs", type=int, default=16,
                           help="hubs for any replayed rebuild installs")
    recover_p.set_defaults(func=_cmd_evolve_recover)

    # Regression thresholds shared by `obs diff` and `obs check`.
    thresh = argparse.ArgumentParser(add_help=False)
    thresh.add_argument(
        "--threshold-time-pct", type=float, default=None, metavar="PCT",
        help="phase wall-time growth counted as a regression (default 15)")
    thresh.add_argument(
        "--threshold-counter-pct", type=float, default=None, metavar="PCT",
        help="work-counter growth counted as a regression (default 10)")
    thresh.add_argument(
        "--threshold-quality-drop", type=float, default=None, metavar="ABS",
        help="absolute drop of a quality fraction counted as a regression "
             "(default 0.01)")

    obs_p = sub.add_parser(
        "obs", help="analyze run journals: report, diff, check, baseline")
    obs_sub = obs_p.add_subparsers(dest="obs_command", required=True)

    rep_p = obs_sub.add_parser(
        "report", help="render a journal as a terminal/HTML run report")
    rep_p.add_argument("journal", help="JSONL journal from --trace")
    rep_p.add_argument("--html", metavar="PATH",
                       help="also write a self-contained HTML report")
    rep_p.add_argument("--json", metavar="PATH",
                       help="also write the machine-readable report "
                            "(same summary structures as the HTML)")
    rep_p.set_defaults(func=_cmd_obs_report)

    trace_p = obs_sub.add_parser(
        "trace", help="render a request's causal tree + waterfall "
                      "(no id: list traced requests)")
    trace_p.add_argument("journal", help="JSONL journal from --trace")
    trace_p.add_argument("trace_id", nargs="?", default=None,
                         help="trace id (from the listing, an exemplar, "
                              "or /statz)")
    trace_p.add_argument("--html", metavar="PATH",
                         help="also write a self-contained HTML trace view")
    trace_p.add_argument("--pick", metavar="STATUS", default=None,
                         help="print the first trace id with this terminal "
                              "status (ok/degraded/failed/rejected) and "
                              "exit; what CI scripting uses")
    trace_p.set_defaults(func=_cmd_obs_trace)

    explain_p = obs_sub.add_parser(
        "explain", help="render the per-request explain record "
                        "(EXPLAIN ANALYZE for one traced query)")
    explain_p.add_argument("journal")
    explain_p.add_argument("trace_id")
    explain_p.set_defaults(func=_cmd_obs_explain)

    diff_p = obs_sub.add_parser(
        "diff", help="per-phase and per-counter deltas of two journals",
        parents=[thresh])
    diff_p.add_argument("journal_a", help="baseline journal")
    diff_p.add_argument("journal_b", help="newer journal")
    diff_p.set_defaults(func=_cmd_obs_diff)

    base_p = obs_sub.add_parser(
        "baseline", help="distill a journal into a committable baseline")
    base_p.add_argument("journal")
    base_p.add_argument("--out", required=True,
                        help="baseline JSON path (e.g. benchmarks/baselines/)")
    base_p.set_defaults(func=_cmd_obs_baseline)

    check_p = obs_sub.add_parser(
        "check", help="gate a journal against a committed baseline",
        parents=[thresh])
    check_p.add_argument("journal")
    check_p.add_argument("--baseline", required=True,
                         help="baseline file, or a directory of baselines "
                              "matched by run key")
    check_p.add_argument("--fail-on-regress", action="store_true",
                         help="exit non-zero when a threshold is exceeded")
    check_p.add_argument("--html", metavar="PATH",
                         help="also write the HTML report with the delta "
                              "table embedded")
    check_p.set_defaults(func=_cmd_obs_check)

    top_p = obs_sub.add_parser(
        "top", help="live dashboard over a /metrics exporter endpoint")
    top_p.add_argument("endpoint", nargs="?", default="127.0.0.1:9179",
                       help="host:port (or URL) of a --export-port process")
    top_p.add_argument("--interval", type=float, default=1.0,
                       metavar="SECONDS", help="refresh period")
    top_p.add_argument("--once", action="store_true",
                       help="print a single frame and exit (no screen "
                            "clearing; what tests and scripts use)")
    top_p.add_argument("--timeout", type=float, default=2.0,
                       metavar="SECONDS", help="per-request scrape timeout")
    top_p.set_defaults(func=_cmd_obs_top)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    profile_path = getattr(args, "profile", None)
    if trace_path is None and not want_metrics and profile_path is None:
        return args.func(args)

    from repro import obs

    profiler = None
    if profile_path is not None:
        from repro.obs.live import profile as obs_profile

        profiler = obs_profile.Profiler(
            interval_s=getattr(args, "profile_interval", 0.005)
        ).start()
    snap = None
    with obs.telemetry(
        trace_path=trace_path,
        config=default_config(),
        seed=default_config().source_seed,
        argv=list(argv) if argv is not None else sys.argv[1:],
    ):
        rc = args.func(args)
        if profiler is not None:
            # Stop inside the telemetry context so the profile snapshot
            # lands in the journal and `obs report` can render it.
            snap = profiler.stop()
            obs.journal.emit({
                "type": "event", "name": "obs.profile", **snap.to_dict(),
            })
    if snap is not None:
        snap.write_collapsed(profile_path)
        print("\n== profile (self time per span) ==")
        print(snap.render_table())
        print(f"collapsed stacks -> {profile_path}")
    if want_metrics:
        print("\n== span summary ==")
        print(obs.spans.render_summary())
        print("\n== metrics ==")
        print(obs.REGISTRY.render_table())
        quality_line = obs.quality.summary_line()
        if quality_line:
            print(quality_line)
    if trace_path is not None:
        print(f"telemetry journal -> {trace_path}")
    return rc


if __name__ == "__main__":
    sys.exit(main())
