"""Experiment harness: regenerates every table and figure of the paper."""

from repro.harness.config import HarnessConfig, default_config
from repro.harness.cache import (
    get_graph,
    get_cg,
    get_sources,
    get_truth,
    clear_caches,
)
from repro.harness.tables import render_table
from repro.harness.results import save_result
from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.experiments.base import ExperimentResult

__all__ = [
    "HarnessConfig",
    "default_config",
    "get_graph",
    "get_cg",
    "get_sources",
    "get_truth",
    "clear_caches",
    "render_table",
    "save_result",
    "EXPERIMENTS",
    "run_experiment",
    "ExperimentResult",
]
