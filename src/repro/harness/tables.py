"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def _format_cell(value, floatfmt: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    floatfmt: str = ".2f",
) -> str:
    """Render an aligned ASCII table (right-aligned numeric columns)."""
    str_rows: List[List[str]] = [
        [_format_cell(c, floatfmt) for c in row] for row in rows
    ]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        cells = []
        for cell, w in zip(row, widths):
            cells.append(cell.rjust(w) if _looks_numeric(cell) else cell.ljust(w))
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def _looks_numeric(cell: str) -> bool:
    stripped = cell.replace("%", "").replace("x", "").replace(",", "")
    try:
        float(stripped)
    except ValueError:
        return False
    return True
