"""Ablations of the design choices behind the core-graph recipe.

The paper fixes several design parameters with brief justifications; these
experiments vary them one at a time:

* ``ablation_hubs`` — number of hub queries (the paper fixes 20 after
  observing Fig. 3's saturation).
* ``ablation_hub_selection`` — top-total-degree hubs vs out-/in-degree vs
  random (the paper cites "high degree vertices are good proxies for high
  centrality vertices" in power-law graphs).
* ``ablation_connectivity`` — the additional-connectivity pass of
  Algorithm 1 lines 8-12 on vs off.
* ``ablation_direction`` — forward+backward hub queries vs forward-only
  (the paper argues both directions preserve pairwise reachability).
* ``ablation_pagerank`` — the §2.1 open problem: what CG bootstrapping
  does (and does not do) for a non-monotonic algorithm.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.identify import build_core_graph
from repro.core.nonmonotonic import bootstrap_pagerank
from repro.core.precision import measure_precision
from repro.graph.degree import top_degree_vertices
from repro.harness.cache import get_cg, get_graph, get_sources, get_truth
from repro.harness.config import HarnessConfig, default_config
from repro.harness.experiments.base import ExperimentResult
from repro.queries.specs import SSSP, SSWP

ABLATION_GRAPH = "TT"


def _config(config: Optional[HarnessConfig]) -> HarnessConfig:
    return config or default_config()


def _precision_of(g, cg, spec, cfg, graph_name) -> float:
    sources = get_sources(graph_name, cfg.num_queries)
    truths = [get_truth(graph_name, spec.name, int(s)) for s in sources]
    return measure_precision(g, cg, spec, sources, true_values=truths).pct_precise


def ablation_hubs(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """CG size and precision vs number of hub queries (SSSP on TT)."""
    cfg = _config(config)
    g = get_graph(ABLATION_GRAPH)
    result = ExperimentResult(
        exp_id="ablation_hubs",
        title=f"SSSP CG vs #hubs on {ABLATION_GRAPH}",
        paper_reference="§2.1 (the choice of 20 hubs) / Figure 3",
        headers=["#hubs", "CG % edges", "precision %"],
        notes="Precision should saturate well before the paper's 20 hubs; "
        "edges grow sublinearly.",
    )
    for num_hubs in (1, 2, 5, 10, 20, 40):
        cg = build_core_graph(g, SSSP, num_hubs=num_hubs)
        result.rows.append([
            num_hubs,
            100.0 * cg.edge_fraction,
            _precision_of(g, cg, SSSP, cfg, ABLATION_GRAPH),
        ])
    return result


def ablation_hub_selection(
    config: Optional[HarnessConfig] = None,
) -> ExperimentResult:
    """Hub-selection strategies: degree modes vs random vertices."""
    cfg = _config(config)
    g = get_graph(ABLATION_GRAPH)
    rng = np.random.default_rng(cfg.source_seed + 1)
    strategies = {
        "top-total-degree": top_degree_vertices(g, cfg.num_hubs, "total"),
        "top-out-degree": top_degree_vertices(g, cfg.num_hubs, "out"),
        "top-in-degree": top_degree_vertices(g, cfg.num_hubs, "in"),
        "random": rng.choice(
            np.flatnonzero(g.out_degree() > 0), cfg.num_hubs, replace=False
        ),
    }
    result = ExperimentResult(
        exp_id="ablation_hub_selection",
        title=f"Hub selection strategies (SSSP on {ABLATION_GRAPH}, "
        f"{cfg.num_hubs} hubs)",
        paper_reference="§2.1 (high-degree vertices proxy high centrality)",
        headers=["strategy", "CG % edges", "precision %"],
        notes="Degree-based hubs should dominate random hubs in precision "
        "per retained edge.",
    )
    for name, hubs in strategies.items():
        cg = build_core_graph(g, SSSP, hubs=[int(h) for h in hubs])
        result.rows.append([
            name,
            100.0 * cg.edge_fraction,
            _precision_of(g, cg, SSSP, cfg, ABLATION_GRAPH),
        ])
    return result


def ablation_connectivity(
    config: Optional[HarnessConfig] = None,
) -> ExperimentResult:
    """The additional-connectivity pass on vs off (SSSP and SSWP)."""
    cfg = _config(config)
    g = get_graph(ABLATION_GRAPH)
    result = ExperimentResult(
        exp_id="ablation_connectivity",
        title=f"Connectivity pass (Algorithm 1 lines 8-12) on {ABLATION_GRAPH}",
        paper_reference="§2.1 (Additional Connectivity Edges)",
        headers=["query", "connectivity", "CG % edges", "precision %",
                 "vertices w/o out-edge"],
    )
    for spec in (SSSP, SSWP):
        for connectivity in (False, True):
            cg = build_core_graph(
                g, spec, num_hubs=cfg.num_hubs, connectivity=connectivity
            )
            uncovered = int(np.count_nonzero(
                (g.out_degree() > 0) & (cg.graph.out_degree() == 0)
            ))
            result.rows.append([
                spec.name,
                "on" if connectivity else "off",
                100.0 * cg.edge_fraction,
                _precision_of(g, cg, spec, cfg, ABLATION_GRAPH),
                uncovered,
            ])
    return result


def ablation_direction(
    config: Optional[HarnessConfig] = None,
) -> ExperimentResult:
    """Forward+backward hub queries vs forward-only."""
    cfg = _config(config)
    g = get_graph(ABLATION_GRAPH)
    result = ExperimentResult(
        exp_id="ablation_direction",
        title=f"Hub query directions (SSSP on {ABLATION_GRAPH})",
        paper_reference="§2.1 (Forward and Backward Queries)",
        headers=["directions", "CG % edges", "precision %"],
        notes="Backward queries preserve paths *into* the hubs; dropping "
        "them shrinks the CG but costs precision.",
    )
    for include_backward, label in ((True, "forward+backward"),
                                    (False, "forward only")):
        cg = build_core_graph(
            g, SSSP, num_hubs=cfg.num_hubs, include_backward=include_backward
        )
        result.rows.append([
            label,
            100.0 * cg.edge_fraction,
            _precision_of(g, cg, SSSP, cfg, ABLATION_GRAPH),
        ])
    return result


def ablation_identification(
    config: Optional[HarnessConfig] = None,
) -> ExperimentResult:
    """Algorithm 2 (Qid-sharing BFS) vs Algorithm 1 for the general CG.

    REACH could also be identified by Algorithm 1 (it is a single-source
    query with a solution-path witness); the paper chose the BFS-tree
    construction instead. This ablation measures the trade: size, build
    time, and REACH precision of the two constructions.
    """
    import time

    from repro.core.unweighted import build_unweighted_core_graph
    from repro.queries.specs import REACH

    cfg = _config(config)
    g = get_graph(ABLATION_GRAPH)
    result = ExperimentResult(
        exp_id="ablation_identification",
        title=f"General-CG identification on {ABLATION_GRAPH}: "
        "Algorithm 2 vs Algorithm 1",
        paper_reference="§2.1 (CG for Unweighted Graphs)",
        headers=["algorithm", "CG % edges", "build s", "REACH precision %"],
        notes="Why the paper needs Algorithm 2: REACH's solution-path "
        "witness (Val(u) == Val(v) == 1) is satisfied by EVERY edge between "
        "reached vertices, so Algorithm 1 degenerates to keeping nearly the "
        "whole graph; the BFS-tree construction is both small and faster "
        "to build.",
    )
    builders = (
        ("algorithm2 (BFS, Qid)", lambda: build_unweighted_core_graph(
            g, num_hubs=cfg.num_hubs)),
        ("algorithm1 (witness)", lambda: build_core_graph(
            g, REACH, num_hubs=cfg.num_hubs)),
    )
    for label, build in builders:
        t0 = time.perf_counter()
        cg = build()
        elapsed = time.perf_counter() - t0
        result.rows.append([
            label,
            100.0 * cg.edge_fraction,
            elapsed,
            _precision_of(g, cg, REACH, cfg, ABLATION_GRAPH),
        ])
    return result


def ablation_pagerank(
    config: Optional[HarnessConfig] = None,
) -> ExperimentResult:
    """The open problem: CG warm-starting the non-monotonic PageRank."""
    cfg = _config(config)
    result = ExperimentResult(
        exp_id="ablation_pagerank",
        title="PageRank with CG warm start (non-monotonic boundary)",
        paper_reference="§2.1 Limitations (open problem)",
        headers=["G", "cold iters", "warm iters", "iters saved %",
                 "phase-1 L1 error", "final L1 divergence"],
        notes="No exactness guarantee exists for PageRank; the warm start "
        "only trades phase-1 work for full-graph iterations. The phase-1 "
        "error column shows the CG-only ranks are NOT the answer.",
    )
    for name in ("PK", "TT"):
        g = get_graph(name)
        cg = get_cg(name, SSSP)
        study = bootstrap_pagerank(g, cg, tol=1e-10)
        result.rows.append([
            name,
            study.cold.iterations,
            study.warm.iterations,
            study.iteration_reduction_pct,
            study.phase1_error_l1,
            study.final_divergence_l1,
        ])
    return result
