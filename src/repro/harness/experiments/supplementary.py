"""Supplementary experiments beyond the paper's tables.

* ``suppl_reduced`` — quantify §4's criticism of the Reduced Graph prior
  work: edges kept vs vertices still queryable, next to the CG.
* ``suppl_convergence`` — the per-iteration story behind the speedups:
  direct vs core+completion edge/frontier series.
* ``suppl_engines`` — scheduling comparison: synchronous push vs chunked
  async vs direction-optimizing push/pull on the same queries.
* ``suppl_pointtopoint`` — point-to-all (CG 2Phase) vs per-pair methods
  (bidirectional Dijkstra, PnP pruning) on a batch of (s, t) pairs.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.analysis.traces import Trace, two_phase_trace
from repro.baselines.reduced import build_reduced_graph
from repro.core.pointtopoint import bidirectional_sssp, pnp_point_to_point
from repro.core.twophase import two_phase
from repro.engines.async_engine import async_evaluate
from repro.engines.frontier import evaluate_query
from repro.engines.pull import direction_optimizing_evaluate
from repro.engines.stats import RunStats
from repro.harness.cache import get_cg, get_graph, get_sources
from repro.harness.config import HarnessConfig, default_config
from repro.harness.experiments.base import ExperimentResult
from repro.queries.registry import get_spec
from repro.queries.specs import SSSP


def _config(config: Optional[HarnessConfig]) -> HarnessConfig:
    return config or default_config()


def suppl_reduced(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """Reduced Graph vs Core Graph: size kept vs vertices queryable."""
    cfg = _config(config)
    result = ExperimentResult(
        exp_id="suppl_reduced",
        title="Input reduction (Kusum et al.) vs core graphs",
        paper_reference="§4 related work (Reduced Graph criticism)",
        headers=["G", "RG % edges", "RG % queryable",
                 "CG % edges", "CG % queryable"],
        notes="The paper: reduced graphs keep ~50% of edges and cannot "
        "answer queries for eliminated vertices; CGs keep all vertices. "
        "On power-law stand-ins the reduction keeps even more (~99%) — "
        "degree-2 chains barely exist there.",
    )
    for name in cfg.real_graphs:
        g = get_graph(name)
        rg = build_reduced_graph(g, SSSP)
        cg = get_cg(name, SSSP)
        result.rows.append([
            name,
            100.0 * rg.edge_fraction,
            100.0 * rg.queryable_fraction,
            100.0 * cg.edge_fraction,
            100.0,
        ])
    return result


def suppl_convergence(
    config: Optional[HarnessConfig] = None,
) -> ExperimentResult:
    """Per-iteration edge series of direct vs 2Phase evaluation (TT SSWP)."""
    cfg = _config(config)
    graph_name, spec = "TT", get_spec("SSWP")
    g = get_graph(graph_name)
    cg = get_cg(graph_name, spec)
    source = int(get_sources(graph_name, 1)[0])
    baseline = RunStats()
    evaluate_query(g, spec, source, stats=baseline)
    res = two_phase(g, cg, spec, source)
    result = ExperimentResult(
        exp_id="suppl_convergence",
        title=f"Convergence series, SSWP({source}) on {graph_name}",
        paper_reference="supplementary (explains Figs. 5-8)",
        headers=["run", "iteration", "frontier", "edges scanned"],
        notes="The core phase works on CG edges only; the completion phase "
        "collapses to a few sweeps.",
    )
    traces = [Trace.from_stats("direct", baseline)]
    traces.extend(two_phase_trace(res))
    for trace in traces:
        for i in range(trace.iterations):
            result.rows.append(
                [trace.label, i, trace.frontier_sizes[i],
                 trace.edges_scanned[i]]
            )
    return result


def suppl_engines(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """Scheduling comparison: sync push / async / direction-optimizing."""
    cfg = _config(config)
    graph_name = "TT"
    g = get_graph(graph_name)
    source = int(get_sources(graph_name, 1)[0])
    result = ExperimentResult(
        exp_id="suppl_engines",
        title=f"Engine scheduling on {graph_name}",
        paper_reference="supplementary (substrate characterization)",
        headers=["query", "engine", "iterations", "edges", "wall ms"],
        notes="All engines converge to identical values (tested); they "
        "differ in rounds and edge traffic.",
    )
    for spec_name in ("SSSP", "SSWP", "REACH"):
        spec = get_spec(spec_name)
        runs = (
            ("sync push", lambda st: evaluate_query(g, spec, source, stats=st)),
            ("async", lambda st: async_evaluate(
                g, spec, source, chunk_size=2048, stats=st)),
            ("direction-opt", lambda st: direction_optimizing_evaluate(
                g, spec, source, stats=st)),
        )
        reference = None
        for label, run in runs:
            stats = RunStats()
            t0 = time.perf_counter()
            vals = run(stats)
            wall = (time.perf_counter() - t0) * 1e3
            if reference is None:
                reference = vals
            else:
                assert np.array_equal(vals, reference)
            result.rows.append([
                spec_name, label, stats.iterations,
                stats.edges_processed, wall,
            ])
    return result


def suppl_distributed(
    config: Optional[HarnessConfig] = None,
) -> ExperimentResult:
    """Generality beyond the paper's three systems: a Pregel-style BSP.

    The intro grounds the problem in distributed frameworks; here the same
    CGs cut cross-worker message traffic and supersteps in a synchronous
    vertex-centric model.
    """
    cfg = _config(config)
    from repro.systems.pregel import PregelSimulator

    result = ExperimentResult(
        exp_id="suppl_distributed",
        title="CG bootstrapping in a Pregel-style distributed model "
        "(8 workers, hash placement)",
        paper_reference="supplementary (the intro's distributed framing)",
        headers=["G", "query", "net msgs (base)", "net msgs (2phase)",
                 "reduction %", "supersteps (base)", "supersteps (2phase)",
                 "speedup"],
        notes="The 2phase column includes the n-message bootstrap "
        "broadcast; REACH nearly eliminates completion traffic.",
    )
    for name in cfg.real_graphs:
        g = get_graph(name)
        sim = PregelSimulator(g, workers=8)
        for spec_name in ("SSSP", "SSWP", "REACH"):
            spec = get_spec(spec_name)
            cg = get_cg(name, spec)
            source = int(get_sources(name, 1)[0])
            base = sim.baseline_run(spec, source)
            two = sim.two_phase_run(cg, spec, source)
            assert np.array_equal(base.values, two.values)
            b = base.counters["network_messages"]
            t = two.counters["network_messages"]
            result.rows.append([
                name, spec_name, int(b), int(t),
                100.0 * (b - t) / b if b else 0.0,
                int(base.counters["supersteps"]),
                int(two.counters["supersteps"]),
                two.speedup_over(base),
            ])
    return result


def suppl_shape_agreement(
    config: Optional[HarnessConfig] = None,
) -> ExperimentResult:
    """Quantified shape agreement: rank correlation vs the paper's cells.

    For each table with transcribed paper numbers, the measured cells and
    the published cells are compared by Spearman rank correlation — "who
    wins, by roughly what order" is exactly what a rank statistic captures,
    independent of the absolute-scale offsets a stand-in cannot match.
    """
    cfg = _config(config)
    from repro.datasets.paper_numbers import (
        FIG2_SPEEDUPS,
        QUERY_ORDER,
        TABLE5_PRECISION,
        TABLE9_IO_REDUCTION,
        TABLE11_EDGES_REDUCTION,
        TABLE12_TRIANGLE_SPEEDUPS,
        spearman_rho,
    )
    from repro.harness.experiments.systems import sweep, speedup

    result = ExperimentResult(
        exp_id="suppl_shape_agreement",
        title="Rank correlation between measured and paper cells",
        paper_reference="whole evaluation",
        headers=["experiment", "cells", "spearman rho"],
        notes="rho = +1: the stand-in orders every cell exactly as the "
        "paper; values well above 0 mean the shape holds. Table 12's 12 "
        "cells are rank-unstable at stand-in scale (the paper's ordering "
        "there is driven by graph size, which the uniform stand-ins "
        "deliberately do not vary).",
    )

    # Fig. 2: 18 speedup cells on FR.
    measured, paper = [], []
    for system, paper_row in FIG2_SPEEDUPS.items():
        for spec_name, paper_val in zip(QUERY_ORDER, paper_row):
            measured.append(speedup(system, "FR", spec_name, "cg", cfg))
            paper.append(paper_val)
    result.rows.append(
        ["fig02 speedups", len(paper), spearman_rho(measured, paper)]
    )

    # Table 9: GridGraph I/O-iteration reductions.
    measured, paper = [], []
    for graph_name, paper_row in TABLE9_IO_REDUCTION.items():
        if graph_name not in cfg.real_graphs:
            continue
        for spec_name, paper_val in zip(QUERY_ORDER, paper_row):
            base = sweep("GridGraph", graph_name, spec_name, "baseline", cfg)
            two = sweep("GridGraph", graph_name, spec_name, "cg", cfg)
            b = base.counters.get("io_iterations", 0.0)
            t = two.counters.get("io_iterations", 0.0)
            measured.append(100.0 * (b - t) / b if b else 0.0)
            paper.append(paper_val)
    result.rows.append(
        ["table09 I/O reductions", len(paper), spearman_rho(measured, paper)]
    )

    # Table 11: Ligra EDGES-RED.
    measured, paper = [], []
    for graph_name, paper_row in TABLE11_EDGES_REDUCTION.items():
        if graph_name not in cfg.real_graphs:
            continue
        for spec_name, paper_val in zip(QUERY_ORDER, paper_row):
            base = sweep("Ligra", graph_name, spec_name, "baseline", cfg)
            two = sweep("Ligra", graph_name, spec_name, "cg", cfg)
            b = base.counters.get("edges_processed", 0.0)
            t = two.counters.get("edges_processed", 0.0)
            measured.append(100.0 * (b - t) / b if b else 0.0)
            paper.append(paper_val)
    result.rows.append(
        ["table11 EDGES-RED", len(paper), spearman_rho(measured, paper)]
    )

    # Table 12: triangle speedups.
    measured, paper = [], []
    for graph_name, paper_row in TABLE12_TRIANGLE_SPEEDUPS.items():
        if graph_name not in cfg.real_graphs:
            continue
        for spec_name, paper_val in zip(("SSNP", "Viterbi", "SSWP"),
                                        paper_row):
            base = sweep("Ligra", graph_name, spec_name, "baseline", cfg)
            tri = sweep("Ligra", graph_name, spec_name, "cg-tri", cfg)
            measured.append(base.time / tri.time)
            paper.append(paper_val)
    result.rows.append(
        ["table12 triangle speedups", len(paper),
         spearman_rho(measured, paper)]
    )

    # Table 5: precision cells (near-constant in both; rho may be noisy —
    # also report the max absolute gap, stashed in the notes).
    from repro.harness.experiments.proxy_quality import table05

    t5 = table05(cfg)
    gaps = []
    for row in t5.rows:
        paper_row = TABLE5_PRECISION.get(row[0])
        if paper_row is None:
            continue
        gaps.extend(abs(m - p) for m, p in zip(row[1:], paper_row))
    if gaps:
        result.notes += (
            f" Table 5 precision: max |measured - paper| = "
            f"{max(gaps):.1f} points."
        )
    return result


def suppl_evolving(
    config: Optional[HarnessConfig] = None,
) -> ExperimentResult:
    """Core-phase precision decay under edge insertions, and the rebuild.

    Insertions never break exactness (2Phase repairs any proxy), but the
    stale CG's precision — and with it the speedup — decays as new
    solution paths appear outside it. The last row shows a rebuild
    restoring quality.
    """
    cfg = _config(config)
    from repro.core.evolving import EvolvingCoreGraph
    from repro.graph.mutate import random_edge_batch

    graph_name = "PK"
    g = get_graph(graph_name)
    ev = EvolvingCoreGraph(g, SSSP, num_hubs=cfg.num_hubs)
    result = ExperimentResult(
        exp_id="suppl_evolving",
        title=f"CG quality under edge insertions ({graph_name}, SSSP)",
        paper_reference="supplementary (evolving-graph follow-up line)",
        headers=["state", "|E|", "CG % of |E|", "probe precision %"],
        notes="Queries remain exact throughout; the decaying column is the "
        "core phase's precision, i.e. how much work the completion phase "
        "inherits. The final rebuild restores it.",
    )

    def snapshot(label):
        result.rows.append([
            label,
            ev.graph.num_edges,
            100.0 * ev.cg.num_edges / ev.graph.num_edges,
            ev.probe_precision(),
        ])

    snapshot("initial")
    base_edges = g.num_edges
    for i, fraction in enumerate((0.05, 0.15, 0.30)):
        grow_to = int(base_edges * fraction)
        already = ev.stats.inserted_edges
        ev.insert_edges(
            random_edge_batch(ev.graph, grow_to - already, seed=50 + i)
        )
        snapshot(f"+{int(fraction * 100)}% edges")
    ev.rebuild()
    snapshot("after rebuild")
    return result


def suppl_wonderland(
    config: Optional[HarnessConfig] = None,
) -> ExperimentResult:
    """Wonderland streaming passes: no bootstrap vs AG vs CG bootstraps."""
    cfg = _config(config)
    from repro.harness.experiments.proxy_quality import get_baseline_proxy
    from repro.systems.wonderland import WonderlandSimulator

    result = ExperimentResult(
        exp_id="suppl_wonderland",
        title="Wonderland full-graph passes by bootstrap quality",
        paper_reference="§4 related work (Wonderland) / Table 15 flip side",
        headers=["G", "query", "passes (none)", "passes (AG)", "passes (CG)",
                 "io bytes (none)", "io bytes (CG)"],
        notes="Every pass streams all edges (edge-centric, no selective "
        "skipping), so pass count is the system's whole game; a better "
        "bootstrap means fewer passes. CG must be at least as good as AG.",
    )
    for name in cfg.real_graphs:
        g = get_graph(name)
        sim = WonderlandSimulator(g, num_partitions=cfg.grid_dim)
        for spec_name in ("SSSP", "SSWP"):
            spec = get_spec(spec_name)
            cg = get_cg(name, spec)
            ag = get_baseline_proxy("AG", name, spec_name)
            source = int(get_sources(name, 1)[0])
            base = sim.baseline_run(spec, source)
            with_ag = sim.two_phase_run(ag, spec, source)
            with_cg = sim.two_phase_run(cg, spec, source)
            assert np.array_equal(base.values, with_cg.values)
            result.rows.append([
                name, spec_name,
                int(base.counters["passes"]),
                int(with_ag.counters["passes"]),
                int(with_cg.counters["passes"]),
                int(base.counters["io_bytes"]),
                int(with_cg.counters["io_bytes"]),
            ])
    return result


def suppl_pointtopoint(
    config: Optional[HarnessConfig] = None,
) -> ExperimentResult:
    """Point-to-all CG evaluation vs per-pair methods on (s, t) batches."""
    cfg = _config(config)
    graph_name = "TTW"
    g = get_graph(graph_name)
    cg = get_cg(graph_name, SSSP)
    rng = np.random.default_rng(cfg.source_seed + 9)
    sources = get_sources(graph_name, max(2, cfg.num_queries))
    targets = rng.choice(g.num_vertices, sources.size, replace=False)
    result = ExperimentResult(
        exp_id="suppl_pointtopoint",
        title=f"Point-to-all vs point-to-point on {graph_name}",
        paper_reference="§4 related work (Qbs / PnP contrast)",
        headers=["s", "t", "distance", "2phase ms (all targets)",
                 "bidirectional ms", "PnP ms", "PnP pruned edges"],
        notes="Per-pair methods redo their work per query; one CG 2Phase "
        "answers s -> every vertex.",
    )
    for s, t in zip(sources, targets):
        s, t = int(s), int(t)
        t0 = time.perf_counter()
        res = two_phase(g, cg, SSSP, s)
        ms_cg = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        d_bi = bidirectional_sssp(g, s, t)
        ms_bi = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        d_pnp, pruned = pnp_point_to_point(g, SSSP, s, t)
        ms_pnp = (time.perf_counter() - t0) * 1e3
        truth = res.values[t]
        assert d_bi == truth or (np.isinf(d_bi) and np.isinf(truth))
        assert d_pnp == truth or (np.isinf(d_pnp) and np.isinf(truth))
        dist = "inf" if np.isinf(truth) else float(truth)
        result.rows.append([s, t, dist, ms_cg, ms_bi, ms_pnp, pruned])
    return result
