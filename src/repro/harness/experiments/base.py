"""Experiment result container shared by all drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.harness.tables import render_table


@dataclass
class ExperimentResult:
    """One regenerated table or figure.

    ``rows`` holds the same rows/series the paper reports; ``notes`` records
    deviations and expectations (what shape should hold vs the paper).
    """

    exp_id: str
    title: str
    paper_reference: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: str = ""
    config: Dict[str, Any] = field(default_factory=dict)

    def render(self, floatfmt: str = ".2f") -> str:
        table = render_table(
            self.headers, self.rows,
            title=f"{self.exp_id}: {self.title} [{self.paper_reference}]",
            floatfmt=floatfmt,
        )
        if self.notes:
            table += f"\nNote: {self.notes}"
        return table
