"""Registry of all experiment drivers, one per paper table/figure."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.harness.config import HarnessConfig
from repro.harness.experiments.base import ExperimentResult
from repro.harness.experiments import (
    ablations,
    proxy_quality,
    supplementary,
    systems,
)

#: Experiment id -> driver. Ids follow the paper's numbering; the
#: ``ablation_*`` entries vary its fixed design choices one at a time and
#: the ``suppl_*`` entries measure claims the paper makes in prose.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "ablation_hubs": ablations.ablation_hubs,
    "ablation_hub_selection": ablations.ablation_hub_selection,
    "ablation_connectivity": ablations.ablation_connectivity,
    "ablation_direction": ablations.ablation_direction,
    "ablation_identification": ablations.ablation_identification,
    "ablation_pagerank": ablations.ablation_pagerank,
    "suppl_reduced": supplementary.suppl_reduced,
    "suppl_convergence": supplementary.suppl_convergence,
    "suppl_engines": supplementary.suppl_engines,
    "suppl_pointtopoint": supplementary.suppl_pointtopoint,
    "suppl_wonderland": supplementary.suppl_wonderland,
    "suppl_evolving": supplementary.suppl_evolving,
    "suppl_shape_agreement": supplementary.suppl_shape_agreement,
    "suppl_distributed": supplementary.suppl_distributed,
    "fig02": systems.fig02,
    "fig03": proxy_quality.fig03,
    "fig05": systems.fig05,
    "fig06": systems.fig06,
    "fig07": systems.fig07,
    "fig08": systems.fig08,
    "fig09": proxy_quality.fig09,
    "table01": proxy_quality.table01,
    "table02": proxy_quality.table02,
    "table03": proxy_quality.table03,
    "table04": proxy_quality.table04,
    "table05": proxy_quality.table05,
    "table05_detail": proxy_quality.table05_detail,
    "table07": systems.table07,
    "table08": systems.table08,
    "table09": systems.table09,
    "table10": systems.table10,
    "table11": systems.table11,
    "table12": systems.table12,
    "table13a": proxy_quality.table13a,
    "table13b": proxy_quality.table13b,
    "table13c": proxy_quality.table13c,
    "table14": systems.table14,
    "table15": proxy_quality.table15,
    "table16": proxy_quality.table16,
    "table17": proxy_quality.table17,
}


def run_experiment(
    exp_id: str, config: Optional[HarnessConfig] = None
) -> ExperimentResult:
    """Run one experiment by id; raises ``KeyError`` for unknown ids."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[exp_id](config)


__all__ = ["EXPERIMENTS", "run_experiment", "ExperimentResult"]
