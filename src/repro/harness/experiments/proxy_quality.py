"""Experiments about proxy-graph structure and precision.

Covers: Fig. 3, Table 1, Table 2, Table 3, Table 4, Table 5, Table 13,
Table 15, Table 16, Table 17, and Fig. 9.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.degree_dist import degree_distribution_series, powerlaw_fit
from repro.analysis.overlap import top_degree_overlap
from repro.baselines.abstraction import build_abstraction_graph
from repro.baselines.sampled import build_sampled_graph
from repro.core.identify import build_core_graph
from repro.core.precision import measure_precision
from repro.datasets.example import (
    EXAMPLE_HUB,
    PAPER_CG_DISTANCES,
    PAPER_G_DISTANCES,
    example_graph,
)
from repro.datasets.zoo import zoo_entry
from repro.engines.frontier import evaluate_query
from repro.graph.csr import Graph
from repro.harness.cache import get_cg, get_graph, get_sources, get_truth
from repro.harness.config import HarnessConfig, default_config
from repro.harness.experiments.base import ExperimentResult
from repro.queries.registry import cg_spec_for, get_spec
from repro.queries.specs import REACH, SSSP

#: The five query kinds with their own CG column in Tables 1, 4, and 13b.
CG_SPEC_NAMES = ("SSSP", "SSNP", "Viterbi", "SSWP", "REACH")

#: All six query kinds of the precision tables.
QUERY_NAMES = ("SSSP", "SSNP", "Viterbi", "SSWP", "REACH", "WCC")

_PROXY_CACHE: Dict[Tuple[str, str, str, int], Graph] = {}


def _config(config: Optional[HarnessConfig]) -> HarnessConfig:
    return config or default_config()


def get_baseline_proxy(
    kind: str, graph_name: str, spec_name: str, scale: int = 1
) -> Graph:
    """AG/SG proxy sized to ``scale`` times the matching CG (cached).

    ``kind`` is ``"AG"`` or ``"SG"``; ``scale=2`` gives the paper's 2AG/2SG.
    WCC resolves to REACH (they share the general CG and thus the budget).
    """
    spec_name = cg_spec_for(get_spec(spec_name)).name
    key = (kind, graph_name.upper(), spec_name, scale)
    if key not in _PROXY_CACHE:
        g = get_graph(graph_name)
        cg = get_cg(graph_name, get_spec(spec_name))
        budget = scale * cg.num_edges
        if kind == "AG":
            proxy, _ = build_abstraction_graph(g, budget)
        elif kind == "SG":
            seed = zlib.crc32(repr(key).encode())
            proxy, _ = build_sampled_graph(g, budget, seed=seed)
        else:
            raise ValueError(f"unknown proxy kind {kind!r}")
        _PROXY_CACHE[key] = proxy
    return _PROXY_CACHE[key]


def _truth_for(graph_name: str, spec, sources) -> List[np.ndarray]:
    if spec.multi_source:
        return [get_truth(graph_name, spec.name, None)]
    return [get_truth(graph_name, spec.name, int(s)) for s in sources]


def _precision_rows(
    graph_names, proxy_for, config: HarnessConfig
) -> List[List]:
    """One row per graph: % precise vertices for each of the six queries."""
    rows = []
    for name in graph_names:
        g = get_graph(name)
        sources = get_sources(name, config.num_queries)
        row: List = [name]
        for spec_name in QUERY_NAMES:
            spec = get_spec(spec_name)
            proxy = proxy_for(name, spec)
            report = measure_precision(
                g, proxy, spec, sources, true_values=_truth_for(name, spec, sources)
            )
            row.append(report.pct_precise)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Fig. 3 — CG edge growth with number of hub queries
# ----------------------------------------------------------------------
def fig03(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """Non-zero centrality edges discovered vs. number of hub queries (TT)."""
    cfg = _config(config)
    graph_name = "TT"
    g = get_graph(graph_name)
    num_hubs = 2 * cfg.num_hubs
    result = ExperimentResult(
        exp_id="fig03",
        title=f"CG edge count vs #hub queries on {graph_name} "
        f"(|E| = {g.num_edges})",
        paper_reference="Figure 3",
        headers=["#queries"] + list(CG_SPEC_NAMES),
        notes="Each query adds forward+backward traversals; the curve must "
        "flatten quickly (most centrality edges found by few hubs).",
        config={"graph": graph_name, "num_hubs": num_hubs},
    )
    growths = {}
    for spec_name in CG_SPEC_NAMES:
        cg = get_cg(graph_name, get_spec(spec_name), num_hubs=num_hubs,
                    track_growth=True, connectivity=False)
        growths[spec_name] = cg.growth
    for q in range(num_hubs):
        result.rows.append(
            [q + 1] + [int(growths[s][q]) for s in CG_SPEC_NAMES]
        )
    return result


# ----------------------------------------------------------------------
# Table 1 — how many forward queries select each CG edge
# ----------------------------------------------------------------------
def table01(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """Average #forward queries (of num_hubs) selecting a CG edge (TT)."""
    cfg = _config(config)
    graph_name = "TT"
    result = ExperimentResult(
        exp_id="table01",
        title=f"Avg #queries (of {cfg.num_hubs} forward) selecting a CG edge "
        f"on {graph_name}",
        paper_reference="Table 1",
        headers=["G"] + list(CG_SPEC_NAMES),
        notes="Paper: 13.01-20.00 on TT; the shape to reproduce is strong "
        "overlap (averages well above 1).",
        config={"graph": graph_name, "num_hubs": cfg.num_hubs},
    )
    row: List = [graph_name]
    for spec_name in CG_SPEC_NAMES:
        spec = get_spec(spec_name)
        if spec.uses_weights:
            cg = get_cg(graph_name, spec, num_hubs=cfg.num_hubs,
                        track_selection=True, connectivity=False)
            counts = cg.forward_selection_counts
            selected = counts[counts > 0]
            row.append(float(selected.mean()) if selected.size else 0.0)
        else:
            # Algorithm 2's Qid sharing deliberately avoids re-selecting
            # edges, so the overlap statistic is defined for weighted CGs.
            row.append(None)
    result.rows.append(row)
    return result


# ----------------------------------------------------------------------
# Table 2 — the worked example, cell for cell
# ----------------------------------------------------------------------
def table02(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """All-pairs SSSP on the 9-vertex example: G and CG vs the paper."""
    g = example_graph()
    cg = build_core_graph(g, SSSP, hubs=[EXAMPLE_HUB], connectivity=False)
    result = ExperimentResult(
        exp_id="table02",
        title="Worked example: all shortest paths on G (17 edges) and "
        "CG (8 edges)",
        paper_reference="Table 2 / Figure 4",
        headers=["graph", "source"] + [str(i) for i in range(1, 10)]
        + ["matches paper"],
        notes="Every row must match the paper exactly (vertices shown "
        "1-indexed as printed there).",
    )
    for label, work, paper in (
        ("G", g, PAPER_G_DISTANCES),
        ("CG", cg.graph, PAPER_CG_DISTANCES),
    ):
        for s in range(9):
            vals = evaluate_query(work, SSSP, s)
            cells = ["inf" if np.isinf(v) else int(v) for v in vals]
            match = bool(np.array_equal(vals, paper[s]))
            result.rows.append([label, s + 1] + cells + [match])
    return result


# ----------------------------------------------------------------------
# Table 3 — graph inventory with CG sizes
# ----------------------------------------------------------------------
def table03(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """Stand-in graph sizes plus their specialized/general CG sizes (MB)."""
    cfg = _config(config)
    result = ExperimentResult(
        exp_id="table03",
        title="Input graphs (scaled stand-ins) and CG sizes",
        paper_reference="Table 3",
        headers=["G", "|E|", "|V|", "G size (MB)"]
        + [f"CG {s} (MB)" for s in CG_SPEC_NAMES]
        + ["paper |E|", "paper |V|"],
        notes="Sizes follow the paper's CSR accounting; stand-ins preserve "
        "the FR > TT > TTW >> PK ordering.",
    )
    for name in cfg.real_graphs:
        g = get_graph(name)
        entry = zoo_entry(name)
        row: List = [name, g.num_edges, g.num_vertices,
                     g.size_bytes() / 1e6]
        for spec_name in CG_SPEC_NAMES:
            cg = get_cg(name, get_spec(spec_name))
            row.append(cg.graph.size_bytes() / 1e6)
        row += [entry.paper_edges, entry.paper_vertices]
        result.rows.append(row)
    return result


# ----------------------------------------------------------------------
# Table 4 — CG sizes as % of edges
# ----------------------------------------------------------------------
def table04(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """% of total edges in the specialized and general core graphs."""
    cfg = _config(config)
    result = ExperimentResult(
        exp_id="table04",
        title=f"CG size as % of |E| ({cfg.num_hubs} hub queries)",
        paper_reference="Table 4",
        headers=["CG"] + list(CG_SPEC_NAMES) + ["average"],
        notes="Paper: 5.42-21.85%, overall average 10.7%; smaller graphs "
        "(PK) give larger fractions.",
        config={"num_hubs": cfg.num_hubs},
    )
    fractions = []
    for name in cfg.real_graphs:
        row: List = [name]
        for spec_name in CG_SPEC_NAMES:
            cg = get_cg(name, get_spec(spec_name))
            pct = 100.0 * cg.edge_fraction
            fractions.append(pct)
            row.append(pct)
        row.append(float(np.mean(row[1:])))
        result.rows.append(row)
    result.notes += f" Measured overall average: {np.mean(fractions):.1f}%."
    return result


# ----------------------------------------------------------------------
# Table 5 — CG precision
# ----------------------------------------------------------------------
def table05(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """Average % of vertices with precise CG results, per graph x query."""
    cfg = _config(config)
    result = ExperimentResult(
        exp_id="table05",
        title=f"CG precision over {cfg.num_queries} random queries",
        paper_reference="Table 5",
        headers=["G"] + list(QUERY_NAMES),
        notes="Paper: 94.5-99.9% precise; SSSP is the hardest query, "
        "REACH/WCC near-perfect.",
        config={"num_queries": cfg.num_queries},
    )
    result.rows = _precision_rows(
        cfg.real_graphs, lambda name, spec: get_cg(name, spec), cfg
    )
    return result


def table05_detail(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """The prose accompanying Table 5: max #imprecise vertices and the
    average % error of imprecise SSSP values.

    Paper: at most 310/40/36/79 imprecise vertices (FR/TT/TTW/PK) for the
    four high-precision queries, and SSSP error averages of 2.27-6.35%.
    """
    cfg = _config(config)
    result = ExperimentResult(
        exp_id="table05_detail",
        title="Imprecision detail: max #imprecise vertices and SSSP error",
        paper_reference="Table 5 prose (§2.1)",
        headers=["G", "max imprecise (SSNP/Vit/SSWP/REACH)",
                 "SSSP max imprecise", "SSSP avg err %"],
        notes="Relative errors are larger at stand-in scale (short paths "
        "make each absolute miss count for more).",
        config={"num_queries": cfg.num_queries},
    )
    high_precision = ("SSNP", "Viterbi", "SSWP", "REACH")
    for name in cfg.real_graphs:
        g = get_graph(name)
        sources = get_sources(name, cfg.num_queries)
        worst = 0
        for spec_name in high_precision:
            spec = get_spec(spec_name)
            report = measure_precision(
                g, get_cg(name, spec), spec, sources,
                true_values=_truth_for(name, spec, sources),
            )
            worst = max(worst, report.max_imprecise)
        sssp_report = measure_precision(
            g, get_cg(name, SSSP), SSSP, sources,
            true_values=_truth_for(name, SSSP, sources),
        )
        result.rows.append([
            name, worst, sssp_report.max_imprecise,
            sssp_report.avg_error_pct,
        ])
    return result


# ----------------------------------------------------------------------
# Table 13 — R-MAT graphs: parameters, CG sizes, precision
# ----------------------------------------------------------------------
def table13a(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    cfg = _config(config)
    result = ExperimentResult(
        exp_id="table13a",
        title="R-MAT stand-ins: parameters and sizes",
        paper_reference="Table 13(a)",
        headers=["G", "a", "b", "c", "d", "|V|", "|E|", "size (MB)"],
    )
    for name in cfg.rmat_graphs:
        g = get_graph(name)
        entry = zoo_entry(name)
        a, b, c, d = entry.params
        result.rows.append(
            [name, a, b, c, d, g.num_vertices, g.num_edges,
             g.size_bytes() / 1e6]
        )
    return result


def table13b(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    cfg = _config(config)
    result = ExperimentResult(
        exp_id="table13b",
        title="% edges in CGs of the R-MAT graphs",
        paper_reference="Table 13(b)",
        headers=["G"] + list(CG_SPEC_NAMES),
        notes="Shape: RMAT2 (locally connected) < RMAT1 < RMAT3 (globally "
        "connected); Viterbi CGs the largest.",
    )
    for name in cfg.rmat_graphs:
        row: List = [name]
        for spec_name in CG_SPEC_NAMES:
            cg = get_cg(name, get_spec(spec_name))
            row.append(100.0 * cg.edge_fraction)
        result.rows.append(row)
    return result


def table13c(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    cfg = _config(config)
    result = ExperimentResult(
        exp_id="table13c",
        title="Precision of query results on R-MAT CGs",
        paper_reference="Table 13(c)",
        headers=["G"] + list(QUERY_NAMES),
        notes="Paper: 91.4-99.9% precise.",
        config={"num_queries": cfg.num_queries},
    )
    result.rows = _precision_rows(
        cfg.rmat_graphs, lambda name, spec: get_cg(name, spec), cfg
    )
    return result


# ----------------------------------------------------------------------
# Tables 15 & 16 — AG and SG precision at 1x and 2x CG budgets
# ----------------------------------------------------------------------
def _proxy_precision(exp_id: str, kind: str, paper_ref: str,
                     cfg: HarnessConfig) -> ExperimentResult:
    result = ExperimentResult(
        exp_id=exp_id,
        title=f"{kind} precision at CG-equal and doubled edge budgets",
        paper_reference=paper_ref,
        headers=["G", "budget"] + list(QUERY_NAMES),
        notes=f"Shape: {kind} precision far below CG's (Table 5); doubling "
        "the budget helps only modestly.",
        config={"num_queries": cfg.num_queries},
    )
    for name in cfg.real_graphs:
        for scale, label in ((1, f"{kind}-P"), (2, f"2{kind}-P")):
            g = get_graph(name)
            sources = get_sources(name, cfg.num_queries)
            row: List = [name, label]
            for spec_name in QUERY_NAMES:
                spec = get_spec(spec_name)
                proxy = get_baseline_proxy(kind, name, spec_name, scale)
                report = measure_precision(
                    g, proxy, spec, sources,
                    true_values=_truth_for(name, spec, sources),
                )
                row.append(report.pct_precise)
            result.rows.append(row)
    return result


def table15(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """Abstraction Graph precision (vs CG's Table 5)."""
    return _proxy_precision("table15", "AG", "Table 15", _config(config))


def table16(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """Sampled Graph precision (vs CG's Table 5)."""
    return _proxy_precision("table16", "SG", "Table 16", _config(config))


# ----------------------------------------------------------------------
# Table 17 — top-k high-degree overlap
# ----------------------------------------------------------------------
def table17(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """Overlap of the top-k highest-degree vertices between FG and SSSP CG."""
    cfg = _config(config)
    ks = (100, 1000, 10000)
    result = ExperimentResult(
        exp_id="table17",
        title="Common high-degree vertices between FG and CG (SSSP)",
        paper_reference="Table 17",
        headers=["G"] + [f"Top {k:,}" for k in ks],
        notes="k scaled to stand-in sizes (paper used 1k/10k/100k); the "
        "shape is near-total overlap.",
    )
    for name in cfg.real_graphs:
        g = get_graph(name)
        cg = get_cg(name, SSSP)
        overlap = top_degree_overlap(g, cg.graph, ks)
        result.rows.append([name] + [overlap[k] for k in ks])
    return result


# ----------------------------------------------------------------------
# Fig. 9 — degree distribution of FG vs CG
# ----------------------------------------------------------------------
def fig09(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """Log-binned degree distribution of FR's full graph vs its SSSP CG."""
    graph_name = "FR"
    g = get_graph(graph_name)
    cg = get_cg(graph_name, SSSP)
    series = degree_distribution_series(g, cg.graph, mode="out")
    result = ExperimentResult(
        exp_id="fig09",
        title=f"Degree distribution, {graph_name} full vs SSSP core graph "
        "(log2-binned)",
        paper_reference="Figure 9",
        headers=["degree bin", "#vertices (full)", "#vertices (core)"],
    )
    max_deg = max(int(series["full"][0].max()), int(series["core"][0].max()), 1)
    edges = [0] + [2**i for i in range(0, int(np.ceil(np.log2(max_deg))) + 1)]
    for lo, hi in zip(edges[:-1], edges[1:]):
        row = [f"[{lo + 1}, {hi}]" if lo else "[1, 1]"]
        for key in ("full", "core"):
            degrees, counts = series[key]
            mask = (degrees > lo) & (degrees <= hi)
            row.append(int(counts[mask].sum()))
        result.rows.append(row)
    alpha_full, _ = powerlaw_fit(*series["full"])
    alpha_core, _ = powerlaw_fit(*series["core"])
    result.notes = (
        f"Power-law exponent estimates: full {alpha_full:.2f}, core "
        f"{alpha_core:.2f} — both distributions must remain power-law."
    )
    return result
