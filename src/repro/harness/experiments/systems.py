"""Experiments that run the Subway/GridGraph/Ligra cost models.

Covers: Fig. 2, Fig. 5, Fig. 6 + Table 7, Fig. 7 + Table 8, Table 9,
Fig. 8 + Table 10, Table 11, Table 12, and Table 14.

One in-process sweep cache makes every (system, graph, query, mode) cell a
single computation shared by all the tables derived from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


from repro.harness.cache import get_cg, get_graph, get_sources
from repro.harness.config import HarnessConfig, default_config
from repro.harness.experiments.base import ExperimentResult
from repro.harness.experiments.proxy_quality import (
    QUERY_NAMES,
    get_baseline_proxy,
)
from repro.queries.registry import get_spec
from repro.systems.gridgraph import GridGraphSimulator
from repro.systems.ligra import LigraSimulator
from repro.systems.report import SystemReport
from repro.systems.subway import SubwaySimulator

SYSTEM_NAMES = ("Subway", "GridGraph", "Ligra")

_SIMS: Dict[Tuple[str, str], object] = {}
_SWEEPS: Dict[Tuple[str, str, str, str], "SweepCell"] = {}


@dataclass
class SweepCell:
    """Averages of one (system, graph, query, mode) cell over the sources."""

    time: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    breakdown: Dict[str, float] = field(default_factory=dict)
    runs: int = 0

    def add(self, report: SystemReport) -> None:
        self.runs += 1
        k = self.runs
        self.time += (report.time - self.time) / k
        for key, val in report.counters.items():
            prev = self.counters.get(key, 0.0)
            self.counters[key] = prev + (float(val) - prev) / k
        for key, val in report.breakdown.items():
            prev = self.breakdown.get(key, 0.0)
            self.breakdown[key] = prev + (float(val) - prev) / k


def _simulator(system: str, graph_name: str, cfg: HarnessConfig):
    key = (system, graph_name.upper())
    if key not in _SIMS:
        g = get_graph(graph_name)
        if system == "Subway":
            _SIMS[key] = SubwaySimulator(g)
        elif system == "GridGraph":
            _SIMS[key] = GridGraphSimulator(g, p=cfg.grid_dim)
        elif system == "Ligra":
            _SIMS[key] = LigraSimulator(g)
        else:
            raise ValueError(f"unknown system {system!r}")
    return _SIMS[key]


def _proxy_for(mode: str, graph_name: str, spec):
    """The proxy graph a mode runs with (None for the baseline)."""
    if mode == "baseline":
        return None
    if mode.startswith("cg"):
        return get_cg(graph_name, spec)
    if mode.startswith("ag"):
        return get_baseline_proxy("AG", graph_name, spec.name)
    if mode.startswith("sg"):
        return get_baseline_proxy("SG", graph_name, spec.name)
    raise ValueError(f"unknown mode {mode!r}")


def sweep(
    system: str,
    graph_name: str,
    spec_name: str,
    mode: str,
    config: Optional[HarnessConfig] = None,
) -> SweepCell:
    """Average reports over the configured random sources (cached).

    ``mode`` is one of ``baseline``, ``cg``, ``cg-tri`` (with Theorem 1
    certificates), ``ag``, ``sg``.
    """
    cfg = config or default_config()
    key = (system, graph_name.upper(), spec_name, mode)
    if key in _SWEEPS:
        return _SWEEPS[key]
    spec = get_spec(spec_name)
    sim = _simulator(system, graph_name, cfg)
    sources: List[Optional[int]]
    if spec.multi_source:
        sources = [None]
    else:
        sources = [int(s) for s in get_sources(graph_name, cfg.num_queries)]
    cell = SweepCell()
    proxy = _proxy_for(mode, graph_name, spec)
    triangle = mode.endswith("-tri")
    for source in sources:
        if mode == "baseline":
            report = sim.baseline_run(spec, source)
        else:
            report = sim.two_phase_run(proxy, spec, source, triangle=triangle)
        cell.add(report)
    _SWEEPS[key] = cell
    return cell


def speedup(
    system: str,
    graph_name: str,
    spec_name: str,
    mode: str = "cg",
    config: Optional[HarnessConfig] = None,
) -> float:
    """Baseline modeled time over 2phase modeled time for one cell."""
    base = sweep(system, graph_name, spec_name, "baseline", config)
    two = sweep(system, graph_name, spec_name, mode, config)
    return base.time / two.time


# ----------------------------------------------------------------------
# Fig. 2 — headline speedups on FR across all three systems
# ----------------------------------------------------------------------
def fig02(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """Speedups with CG over without CG for the FR stand-in."""
    from repro.datasets.paper_numbers import FIG2_SPEEDUPS, QUERY_ORDER

    cfg = config or default_config()
    graph_name = "FR"
    result = ExperimentResult(
        exp_id="fig02",
        title=f"Speedups with CG on {graph_name} (modeled time ratios, "
        "side-by-side with the paper's)",
        paper_reference="Figure 2",
        headers=["query"]
        + [s for s in SYSTEM_NAMES]
        + [f"{s} (paper)" for s in SYSTEM_NAMES],
        notes="Paper peaks: Subway 4.35x, GridGraph 13.62x, Ligra 9.31x; "
        "the shape to hold is consistent >1x wins with REACH strongest "
        "and SSSP/WCC most modest.",
        config={"graph": graph_name, "num_queries": cfg.num_queries},
    )
    for spec_name in QUERY_NAMES:
        row: List = [spec_name]
        for system in SYSTEM_NAMES:
            row.append(speedup(system, graph_name, spec_name, "cg", cfg))
        q = QUERY_ORDER.index(spec_name)
        for system in SYSTEM_NAMES:
            row.append(FIG2_SPEEDUPS[system][q])
        result.rows.append(row)
    return result


# ----------------------------------------------------------------------
# Fig. 5 — Subway cost breakdown, 2Phase normalized to baseline
# ----------------------------------------------------------------------
def fig05(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """GEN/TRANS/COMP/ATOMIC of CG-2Phase normalized to Subway baseline."""
    cfg = config or default_config()
    result = ExperimentResult(
        exp_id="fig05",
        title="Subway 2Phase costs normalized to baseline",
        paper_reference="Figure 5",
        headers=["G", "query", "GEN", "TRANS", "COMP", "ATOMIC"],
        notes="Values < 1 are reductions; paper sees > 50% reductions for "
        "the weighted queries.",
    )
    for graph_name in cfg.real_graphs:
        for spec_name in QUERY_NAMES:
            base = sweep("Subway", graph_name, spec_name, "baseline", cfg)
            two = sweep("Subway", graph_name, spec_name, "cg", cfg)

            def ratio(getter) -> float:
                denom = getter(base)
                return getter(two) / denom if denom else 0.0

            result.rows.append([
                graph_name,
                spec_name,
                ratio(lambda c: c.breakdown.get("gen", 0.0)),
                ratio(lambda c: c.counters.get("trans_bytes", 0.0)),
                ratio(lambda c: c.breakdown.get("comp", 0.0)),
                ratio(lambda c: c.counters.get("atomics", 0.0)),
            ])
    return result


# ----------------------------------------------------------------------
# Figs. 6/7/8 — per-system speedups with CG and AG proxies
# ----------------------------------------------------------------------
def _speedup_table(
    exp_id: str, system: str, paper_ref: str, cfg: HarnessConfig,
    note: str,
) -> ExperimentResult:
    result = ExperimentResult(
        exp_id=exp_id,
        title=f"Speedups over {system} from CG vs AG bootstrapping",
        paper_reference=paper_ref,
        headers=["proxy", "query"] + list(cfg.real_graphs),
        notes=note,
        config={"num_queries": cfg.num_queries},
    )
    for mode, label in (("cg", "CG"), ("ag", "AG")):
        for spec_name in QUERY_NAMES:
            row: List = [label, spec_name]
            for graph_name in cfg.real_graphs:
                row.append(speedup(system, graph_name, spec_name, mode, cfg))
            result.rows.append(row)
    return result


def fig06(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """Subway speedups from CG and AG bootstrapping."""
    return _speedup_table(
        "fig06", "Subway", "Figure 6", config or default_config(),
        "Shape: CG speedups 1.3-4.5x, consistently above AG's.",
    )


def fig07(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """GridGraph speedups from CG and AG bootstrapping."""
    return _speedup_table(
        "fig07", "GridGraph", "Figure 7", config or default_config(),
        "Shape: high-precision queries (SSNP/SSWP/REACH) win big (up to "
        "13.6x in the paper); SSSP/WCC modest; larger graphs win more.",
    )


def fig08(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """Ligra speedups from CG and AG bootstrapping."""
    return _speedup_table(
        "fig08", "Ligra", "Figure 8", config or default_config(),
        "Shape: REACH highest (9.31x in the paper), SSSP/WCC around 1x; "
        "AG frequently below 1x.",
    )


# ----------------------------------------------------------------------
# Tables 7/8/10 — modeled 2Phase execution times
# ----------------------------------------------------------------------
def _times_table(
    exp_id: str, system: str, paper_ref: str, cfg: HarnessConfig
) -> ExperimentResult:
    result = ExperimentResult(
        exp_id=exp_id,
        title=f"Modeled execution times (s) of CG-2Phase {system}",
        paper_reference=paper_ref,
        headers=["G"] + list(QUERY_NAMES),
        notes="Absolute values reflect the cost model's rate constants, not "
        "the paper's hardware; relative ordering across queries/graphs is "
        "the reproducible shape.",
        config={"num_queries": cfg.num_queries},
    )
    for graph_name in cfg.real_graphs:
        row: List = [graph_name]
        for spec_name in QUERY_NAMES:
            row.append(sweep(system, graph_name, spec_name, "cg", cfg).time)
        result.rows.append(row)
    return result


def table07(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """Subway CG-2Phase times."""
    return _times_table("table07", "Subway", "Table 7",
                        config or default_config())


def table08(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """GridGraph CG-2Phase times."""
    return _times_table("table08", "GridGraph", "Table 8",
                        config or default_config())


def table10(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """Ligra CG-2Phase times."""
    return _times_table("table10", "Ligra", "Table 10",
                        config or default_config())


# ----------------------------------------------------------------------
# Table 9 — GridGraph iteration (disk I/O) reduction
# ----------------------------------------------------------------------
def table09(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """% reduction in GridGraph iterations requiring disk I/O."""
    cfg = config or default_config()
    result = ExperimentResult(
        exp_id="table09",
        title="GridGraph: % reduction in iterations requiring disk I/O",
        paper_reference="Table 9",
        headers=["G"] + list(QUERY_NAMES),
        notes="Paper: ~95% for SSNP/SSWP/REACH; 23-47% for SSSP/Viterbi; "
        "0-42% for WCC.",
        config={"num_queries": cfg.num_queries},
    )
    for graph_name in cfg.real_graphs:
        row: List = [graph_name]
        for spec_name in QUERY_NAMES:
            base = sweep("GridGraph", graph_name, spec_name, "baseline", cfg)
            two = sweep("GridGraph", graph_name, spec_name, "cg", cfg)
            b = base.counters.get("io_iterations", 0.0)
            t = two.counters.get("io_iterations", 0.0)
            row.append(100.0 * (b - t) / b if b else 0.0)
        result.rows.append(row)
    return result


# ----------------------------------------------------------------------
# Table 11 — Ligra edges-processed reduction
# ----------------------------------------------------------------------
def table11(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """% reduction in edges processed by Ligra with CG bootstrapping."""
    cfg = config or default_config()
    result = ExperimentResult(
        exp_id="table11",
        title="Ligra: % reduction in edges processed (EDGES-RED)",
        paper_reference="Table 11",
        headers=["G"] + list(QUERY_NAMES),
        notes="Paper: 10-95%, REACH the highest.",
        config={"num_queries": cfg.num_queries},
    )
    for graph_name in cfg.real_graphs:
        row: List = [graph_name]
        for spec_name in QUERY_NAMES:
            base = sweep("Ligra", graph_name, spec_name, "baseline", cfg)
            two = sweep("Ligra", graph_name, spec_name, "cg", cfg)
            b = base.counters.get("edges_processed", 0.0)
            t = two.counters.get("edges_processed", 0.0)
            row.append(100.0 * (b - t) / b if b else 0.0)
        result.rows.append(row)
    return result


# ----------------------------------------------------------------------
# Table 12 — triangle-inequality optimization on Ligra
# ----------------------------------------------------------------------
def table12(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """Ligra speedup and EDGES-RED with Theorem 1 certificates enabled."""
    cfg = config or default_config()
    specs = ("SSNP", "Viterbi", "SSWP")
    result = ExperimentResult(
        exp_id="table12",
        title="Impact of the triangle-inequality optimization on Ligra",
        paper_reference="Table 12",
        headers=["G", "metric"] + list(specs),
        notes="Shape: both speedup and EDGES-RED must improve over the "
        "plain 2Phase numbers (Fig. 8 / Table 11).",
        config={"num_queries": cfg.num_queries},
    )
    for graph_name in cfg.real_graphs:
        speed_row: List = [graph_name, "SPEEDUP"]
        red_row: List = [graph_name, "EDGES-RED %"]
        for spec_name in specs:
            base = sweep("Ligra", graph_name, spec_name, "baseline", cfg)
            tri = sweep("Ligra", graph_name, spec_name, "cg-tri", cfg)
            speed_row.append(base.time / tri.time)
            b = base.counters.get("edges_processed", 0.0)
            t = tri.counters.get("edges_processed", 0.0)
            red_row.append(100.0 * (b - t) / b if b else 0.0)
        result.rows.append(speed_row)
        result.rows.append(red_row)
    return result


# ----------------------------------------------------------------------
# Table 14 — R-MAT speedups across all systems
# ----------------------------------------------------------------------
def table14(config: Optional[HarnessConfig] = None) -> ExperimentResult:
    """CG speedups for the R-MAT graphs on Subway, Ligra, and GridGraph."""
    cfg = config or default_config()
    result = ExperimentResult(
        exp_id="table14",
        title="Speedups for R-MAT graphs",
        paper_reference="Table 14",
        headers=["system", "G"] + list(QUERY_NAMES),
        notes="Shape: broad wins, except Viterbi which can dip to ~1x or "
        "below (low precision and/or large CGs on these weights).",
        config={"num_queries": cfg.num_queries},
    )
    for system in ("Subway", "Ligra", "GridGraph"):
        for graph_name in cfg.rmat_graphs:
            row: List = [system, graph_name]
            for spec_name in QUERY_NAMES:
                row.append(speedup(system, graph_name, spec_name, "cg", cfg))
            result.rows.append(row)
    return result
