"""Harness configuration.

All experiments read one :class:`HarnessConfig`; the environment variables
let the whole suite be scaled without touching code:

``REPRO_NUM_HUBS``
    Hub queries per core graph (paper: 20).
``REPRO_NUM_QUERIES``
    Random queries averaged per cell (paper: 10; default here 5 to keep the
    pure-Python benchmark suite quick — raise it for closer averages).
``REPRO_SCALE_DELTA``
    Added to every zoo graph's R-MAT scale (see ``repro.datasets.zoo``).
``REPRO_RESULTS_DIR``
    Where experiment JSON results are written (default ``./results``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Tuple


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from exc


@dataclass(frozen=True)
class HarnessConfig:
    """Knobs shared by all experiment drivers."""

    num_hubs: int = 20
    num_queries: int = 5
    source_seed: int = 20240422  # EuroSys '24 opening day
    grid_dim: int = 4
    results_dir: Path = field(default_factory=lambda: Path("results"))
    real_graphs: Tuple[str, ...] = ("FR", "TT", "TTW", "PK")
    rmat_graphs: Tuple[str, ...] = ("RMAT1", "RMAT2", "RMAT3")


def default_config() -> HarnessConfig:
    """Config assembled from defaults and environment overrides."""
    return HarnessConfig(
        num_hubs=_env_int("REPRO_NUM_HUBS", 20),
        num_queries=_env_int("REPRO_NUM_QUERIES", 5),
        results_dir=Path(os.environ.get("REPRO_RESULTS_DIR", "results")),
    )
