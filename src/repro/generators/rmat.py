"""R-MAT recursive-matrix graph generator (Chakrabarti et al., SDM 2004).

The paper generates its synthetic inputs with PaRMAT, a multi-threaded R-MAT
generator; this is a vectorized numpy equivalent. Each edge picks one of the
four adjacency-matrix quadrants per recursion level with probabilities
``(a, b, c, d)``; ``a + b + c + d == 1``. Graph500 uses
``(0.57, 0.19, 0.19, 0.05)`` (the paper's RMAT1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.graph.builder import from_arrays
from repro.graph.csr import Graph

GRAPH500_PARAMS: Tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05)


@dataclass(frozen=True)
class RMatParams:
    """R-MAT quadrant probabilities."""

    a: float
    b: float
    c: float
    d: float

    def __post_init__(self) -> None:
        total = self.a + self.b + self.c + self.d
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ValueError(f"R-MAT parameters must sum to 1, got {total}")
        if min(self.a, self.b, self.c, self.d) < 0:
            raise ValueError("R-MAT parameters must be non-negative")

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.a, self.b, self.c, self.d)


def rmat(
    scale: int,
    edge_factor: int,
    params: Tuple[float, float, float, float] = GRAPH500_PARAMS,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    dedup: bool = True,
    drop_self_loops: bool = True,
) -> Graph:
    """Generate a directed unweighted R-MAT graph with ``2**scale`` vertices.

    ``edge_factor`` edges per vertex are drawn; deduplication and self-loop
    removal (both on by default, as in PaRMAT's typical configuration) make
    the final edge count slightly smaller.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    if edge_factor < 1:
        raise ValueError("edge_factor must be >= 1")
    p = RMatParams(*params)
    rng = rng or np.random.default_rng(seed)
    n = 1 << scale
    m = n * edge_factor
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    ab = p.a + p.b
    abc = p.a + p.b + p.c
    for bit in range(scale):
        r = rng.random(m)
        # Quadrants: a -> (0,0), b -> (0,1), c -> (1,0), d -> (1,1).
        src_bit = r >= ab
        dst_bit = np.where(src_bit, r >= abc, r >= p.a)
        src |= src_bit.astype(np.int64) << bit
        dst |= dst_bit.astype(np.int64) << bit
    if drop_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
    return from_arrays(n, src, dst, None, dedup=dedup)
