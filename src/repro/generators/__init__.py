"""Synthetic graph generators."""

from repro.generators.rmat import rmat, RMatParams, GRAPH500_PARAMS
from repro.generators.random_graphs import (
    erdos_renyi,
    path_graph,
    cycle_graph,
    star_graph,
    complete_graph,
    random_weighted_graph,
)

__all__ = [
    "rmat",
    "RMatParams",
    "GRAPH500_PARAMS",
    "erdos_renyi",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "random_weighted_graph",
]
