"""Simple random and structured graph generators (tests and baselines)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.builder import from_arrays, from_edges
from repro.graph.csr import Graph
from repro.graph.weights import ligra_weights


def erdos_renyi(
    n: int,
    m: int,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    drop_self_loops: bool = True,
) -> Graph:
    """G(n, m): ``m`` directed edges drawn uniformly (duplicates removed)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = rng or np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    if drop_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
    return from_arrays(n, src, dst, None, dedup=True)


def random_weighted_graph(
    n: int, m: int, seed: Optional[int] = None
) -> Graph:
    """Erdős–Rényi graph with Ligra-style integer weights; test fodder."""
    rng = np.random.default_rng(seed)
    return ligra_weights(erdos_renyi(n, m, rng=rng), rng=rng)


def path_graph(n: int, weight: float = 1.0) -> Graph:
    """Directed path 0 -> 1 -> ... -> n-1 with constant weights."""
    return from_edges(
        [(i, i + 1, weight) for i in range(n - 1)], num_vertices=n
    )


def cycle_graph(n: int, weight: float = 1.0) -> Graph:
    """Directed cycle over ``n`` vertices."""
    return from_edges(
        [(i, (i + 1) % n, weight) for i in range(n)], num_vertices=n
    )


def star_graph(n: int, weight: float = 1.0) -> Graph:
    """Hub 0 with edges to every other vertex."""
    return from_edges([(0, i, weight) for i in range(1, n)], num_vertices=n)


def lattice_graph(
    rows: int,
    cols: int,
    seed: Optional[int] = None,
    weight_low: float = 1.0,
    weight_high: float = 10.0,
) -> Graph:
    """A bidirectional 2D lattice (road-network-like, decidedly NOT
    power-law) with uniform random weights.

    Used by the limitations study: the paper's §2.1 notes core graphs are
    designed for power-law graphs and "may have different forms and
    different degree of precision" elsewhere.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    rng = np.random.default_rng(seed)

    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
                edges.append((vid(r, c + 1), vid(r, c)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
                edges.append((vid(r + 1, c), vid(r, c)))
    weights = rng.uniform(weight_low, weight_high, len(edges))
    return from_edges(
        [(u, v, float(w)) for (u, v), w in zip(edges, weights)],
        num_vertices=rows * cols,
    )


def complete_graph(n: int, weight: float = 1.0) -> Graph:
    """All ordered pairs (no self-loops)."""
    edges = [
        (u, v, weight) for u in range(n) for v in range(n) if u != v
    ]
    return from_edges(edges, num_vertices=n)
