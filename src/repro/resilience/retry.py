"""Retry with exponential backoff for transient IO.

Artifact reads and dataset materialization can fail transiently (NFS
hiccups, concurrent writers, injected faults); :func:`retry_call` retries
them with capped exponential backoff and records every attempt in
``obs.REGISTRY`` (``resilience.retry.attempts{label=...}`` counts calls,
``resilience.retry.retries`` counts the extra attempts, and
``resilience.retry.failures`` the final give-ups), so flaky storage shows
up in run reports instead of hiding inside silently-slow calls.

Retries are deadline-aware: pass ``budget=`` (a started
:class:`~repro.resilience.budget.Budget`) or ``deadline_s=`` (seconds
from the first attempt) and the backoff sleep is capped to the remaining
time — and skipped entirely (the last error re-raises immediately,
counted under ``resilience.retry.deadline_skips``) when no time remains.
A retried call can therefore never overshoot its request's deadline by
more than one attempt's duration.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Optional, Tuple, Type, TypeVar

from repro.resilience.budget import Budget

T = TypeVar("T")

DEFAULT_RETRY_ON: Tuple[Type[BaseException], ...] = (OSError,)


def backoff_delays(
    attempts: int, base_delay: float = 0.05, max_delay: float = 2.0
) -> Tuple[float, ...]:
    """The sleep schedule between attempts: base * 2^k, capped."""
    return tuple(
        min(max_delay, base_delay * (2 ** k)) for k in range(max(0, attempts - 1))
    )


def retry_call(
    fn: Callable[[], T],
    *,
    attempts: int = 3,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
    retry_on: Tuple[Type[BaseException], ...] = DEFAULT_RETRY_ON,
    label: str = "",
    sleep: Callable[[float], None] = time.sleep,
    budget: Optional[Budget] = None,
    deadline_s: Optional[float] = None,
) -> T:
    """Call ``fn`` with up to ``attempts`` tries; re-raises the last error.

    ``budget`` (its :meth:`~repro.resilience.budget.Budget.remaining_s`)
    and/or ``deadline_s`` (relative to the first attempt) bound the total
    backoff: a sleep is capped to the remaining time, and when nothing
    remains the retry is abandoned and the last error re-raised.
    """
    from repro.obs import metrics as obs_metrics

    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    obs_metrics.counter("resilience.retry.attempts", label=label).inc()
    delays = backoff_delays(attempts, base_delay, max_delay)
    t0 = time.perf_counter()

    def _remaining() -> Optional[float]:
        rem: Optional[float] = None
        if budget is not None:
            rem = budget.remaining_s()
        if deadline_s is not None:
            local = deadline_s - (time.perf_counter() - t0)
            rem = local if rem is None else min(rem, local)
        return rem

    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except retry_on:
            if attempt == attempts:
                obs_metrics.counter(
                    "resilience.retry.failures", label=label
                ).inc()
                raise
            delay = delays[attempt - 1]
            remaining = _remaining()
            if remaining is not None:
                if remaining <= 0.0:
                    # The deadline cannot absorb another attempt at all:
                    # abandoning beats a retry the caller can't use.
                    obs_metrics.counter(
                        "resilience.retry.deadline_skips", label=label
                    ).inc()
                    raise
                delay = min(delay, remaining)
            obs_metrics.counter("resilience.retry.retries", label=label).inc()
            sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover


def retrying(
    *,
    attempts: int = 3,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
    retry_on: Tuple[Type[BaseException], ...] = DEFAULT_RETRY_ON,
    label: str = "",
) -> Callable[[Callable[..., T]], Callable[..., T]]:
    """Decorator form of :func:`retry_call`."""

    def decorate(fn: Callable[..., T]) -> Callable[..., T]:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> T:
            return retry_call(
                lambda: fn(*args, **kwargs),
                attempts=attempts,
                base_delay=base_delay,
                max_delay=max_delay,
                retry_on=retry_on,
                label=label or fn.__qualname__,
            )

        return wrapper

    return decorate
