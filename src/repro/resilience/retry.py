"""Retry with exponential backoff for transient IO.

Artifact reads and dataset materialization can fail transiently (NFS
hiccups, concurrent writers, injected faults); :func:`retry_call` retries
them with capped exponential backoff and records every attempt in
``obs.REGISTRY`` (``resilience.retry.attempts{label=...}`` counts calls,
``resilience.retry.retries`` counts the extra attempts, and
``resilience.retry.failures`` the final give-ups), so flaky storage shows
up in run reports instead of hiding inside silently-slow calls.

Retries are deadline-aware: pass ``budget=`` (a started
:class:`~repro.resilience.budget.Budget`) or ``deadline_s=`` (seconds
from the first attempt) and the backoff sleep is capped to the remaining
time — and skipped entirely (the last error re-raises immediately,
counted under ``resilience.retry.deadline_skips``) when no time remains.
A retried call can therefore never overshoot its request's deadline by
more than one attempt's duration.

Backoff is *full-jitter*: each sleep is drawn uniformly from
``[0, capped_exponential_delay]``, so a fleet of callers that failed
together (a shared-storage blip, a breaker reopening) does not retry in
lockstep and re-create the very stampede that failed them. Under
``REPRO_FAULTS`` the draw is deterministic — seeded from ``(label,
attempt)`` — so fault-injection runs replay the exact same schedule
(the seeded-stream convention the chaos harness relies on).
"""

from __future__ import annotations

import functools
import os
import random
import time
import zlib
from typing import Any, Callable, Optional, Tuple, Type, TypeVar

from repro.resilience.budget import Budget
from repro.resilience.faults import ENV_VAR as _FAULTS_ENV_VAR

T = TypeVar("T")

DEFAULT_RETRY_ON: Tuple[Type[BaseException], ...] = (OSError,)


def backoff_delays(
    attempts: int, base_delay: float = 0.05, max_delay: float = 2.0
) -> Tuple[float, ...]:
    """The *maximum* sleep between attempts: base * 2^k, capped.

    The actual sleep is a full-jitter draw in ``[0, schedule[k]]`` —
    see :func:`jittered_delay`.
    """
    return tuple(
        min(max_delay, base_delay * (2 ** k)) for k in range(max(0, attempts - 1))
    )


def jittered_delay(ceiling: float, label: str, attempt: int) -> float:
    """Full-jitter draw in ``[0, ceiling]``.

    With ``REPRO_FAULTS`` set the draw comes from a stream seeded by
    ``(label, attempt)`` — same inputs, same sleep — so injected-fault
    runs (and the crash-recovery chaos harness) are exactly replayable.
    Without it, the shared global PRNG decorrelates concurrent callers.
    """
    if ceiling <= 0.0:
        return 0.0
    if os.environ.get(_FAULTS_ENV_VAR):
        seed = zlib.crc32(label.encode("utf-8")) * 1_000_003 + attempt
        return random.Random(seed).uniform(0.0, ceiling)
    return random.uniform(0.0, ceiling)


def retry_call(
    fn: Callable[[], T],
    *,
    attempts: int = 3,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
    retry_on: Tuple[Type[BaseException], ...] = DEFAULT_RETRY_ON,
    label: str = "",
    sleep: Callable[[float], None] = time.sleep,
    budget: Optional[Budget] = None,
    deadline_s: Optional[float] = None,
    jitter: bool = True,
) -> T:
    """Call ``fn`` with up to ``attempts`` tries; re-raises the last error.

    ``budget`` (its :meth:`~repro.resilience.budget.Budget.remaining_s`)
    and/or ``deadline_s`` (relative to the first attempt) bound the total
    backoff: a sleep is capped to the remaining time, and when nothing
    remains the retry is abandoned and the last error re-raised.
    ``jitter=False`` sleeps the full exponential schedule (tests that
    assert exact timing use it).
    """
    from repro.obs import metrics as obs_metrics

    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    obs_metrics.counter("resilience.retry.attempts", label=label).inc()
    delays = backoff_delays(attempts, base_delay, max_delay)
    t0 = time.perf_counter()

    def _remaining() -> Optional[float]:
        rem: Optional[float] = None
        if budget is not None:
            rem = budget.remaining_s()
        if deadline_s is not None:
            local = deadline_s - (time.perf_counter() - t0)
            rem = local if rem is None else min(rem, local)
        return rem

    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except retry_on:
            if attempt == attempts:
                obs_metrics.counter(
                    "resilience.retry.failures", label=label
                ).inc()
                raise
            delay = delays[attempt - 1]
            if jitter:
                delay = jittered_delay(delay, label, attempt)
            remaining = _remaining()
            if remaining is not None:
                if remaining <= 0.0:
                    # The deadline cannot absorb another attempt at all:
                    # abandoning beats a retry the caller can't use.
                    obs_metrics.counter(
                        "resilience.retry.deadline_skips", label=label
                    ).inc()
                    raise
                delay = min(delay, remaining)
            obs_metrics.counter("resilience.retry.retries", label=label).inc()
            sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover


def retrying(
    *,
    attempts: int = 3,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
    retry_on: Tuple[Type[BaseException], ...] = DEFAULT_RETRY_ON,
    label: str = "",
) -> Callable[[Callable[..., T]], Callable[..., T]]:
    """Decorator form of :func:`retry_call`."""

    def decorate(fn: Callable[..., T]) -> Callable[..., T]:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> T:
            return retry_call(
                lambda: fn(*args, **kwargs),
                attempts=attempts,
                base_delay=base_delay,
                max_delay=max_delay,
                retry_on=retry_on,
                label=label or fn.__qualname__,
            )

        return wrapper

    return decorate
