"""Retry with exponential backoff for transient IO.

Artifact reads and dataset materialization can fail transiently (NFS
hiccups, concurrent writers, injected faults); :func:`retry_call` retries
them with capped exponential backoff and records every attempt in
``obs.REGISTRY`` (``resilience.retry.attempts{label=...}`` counts calls,
``resilience.retry.retries`` counts the extra attempts, and
``resilience.retry.failures`` the final give-ups), so flaky storage shows
up in run reports instead of hiding inside silently-slow calls.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Tuple, Type, TypeVar

T = TypeVar("T")

DEFAULT_RETRY_ON: Tuple[Type[BaseException], ...] = (OSError,)


def backoff_delays(
    attempts: int, base_delay: float = 0.05, max_delay: float = 2.0
) -> Tuple[float, ...]:
    """The sleep schedule between attempts: base * 2^k, capped."""
    return tuple(
        min(max_delay, base_delay * (2 ** k)) for k in range(max(0, attempts - 1))
    )


def retry_call(
    fn: Callable[[], T],
    *,
    attempts: int = 3,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
    retry_on: Tuple[Type[BaseException], ...] = DEFAULT_RETRY_ON,
    label: str = "",
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` with up to ``attempts`` tries; re-raises the last error."""
    from repro.obs import metrics as obs_metrics

    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    obs_metrics.counter("resilience.retry.attempts", label=label).inc()
    delays = backoff_delays(attempts, base_delay, max_delay)
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except retry_on:
            if attempt == attempts:
                obs_metrics.counter(
                    "resilience.retry.failures", label=label
                ).inc()
                raise
            obs_metrics.counter("resilience.retry.retries", label=label).inc()
            sleep(delays[attempt - 1])
    raise AssertionError("unreachable")  # pragma: no cover


def retrying(
    *,
    attempts: int = 3,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
    retry_on: Tuple[Type[BaseException], ...] = DEFAULT_RETRY_ON,
    label: str = "",
) -> Callable[[Callable[..., T]], Callable[..., T]]:
    """Decorator form of :func:`retry_call`."""

    def decorate(fn: Callable[..., T]) -> Callable[..., T]:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> T:
            return retry_call(
                lambda: fn(*args, **kwargs),
                attempts=attempts,
                base_delay=base_delay,
                max_delay=max_delay,
                retry_on=retry_on,
                label=label or fn.__qualname__,
            )

        return wrapper

    return decorate
