"""Atomic engine-state checkpoints for crash-safe resume.

A checkpoint is one ``.npz`` file holding the mutable state of an engine at
an iteration boundary (value array, frontier/worklist, visited mask, ...)
plus a JSON ``meta`` record: the iteration counter, which engine/phase
wrote it, and a *fingerprint* of the run configuration (query kind, graph
shape and checksum, source, options). Saves go through
:func:`repro.resilience.atomic.atomic_path`, so a kill at any instant
leaves either the previous complete checkpoint or the new one — never a
torn file. Loads verify the fingerprint before any state is trusted, so a
checkpoint can never silently resume against the wrong graph or query.

Engines that iterate deterministically (all of ours do) resume
bit-identically: the synchronous engines' fixed points depend only on the
restored state, which is exactly what the round-trip test suite asserts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

import numpy as np

from repro.resilience.atomic import atomic_path
from repro.resilience.faults import fault_point

if TYPE_CHECKING:
    from repro.graph.csr import Graph
    from repro.queries.base import QuerySpec

CHECKPOINT_FORMAT = 1

PathLike = Union[str, Path]


class CheckpointError(ValueError):
    """A checkpoint file is unreadable or malformed."""


class CheckpointMismatch(CheckpointError):
    """A checkpoint's fingerprint does not match the resuming run."""


def run_fingerprint(
    g: Graph, spec: QuerySpec, source: Optional[int] = None, **extra: Any
) -> Dict[str, Any]:
    """Identity of a run for resume safety: query, graph shape + checksum.

    The checksum is a cheap structural digest (sum of the CSR arrays), not
    a cryptographic hash — it catches the realistic failure mode of
    resuming against a different graph or a differently-seeded stand-in.
    """
    fp: Dict[str, Any] = {
        "spec": spec.name,
        "num_vertices": int(g.num_vertices),
        "num_edges": int(g.num_edges),
        "graph_checksum": int(
            (int(g.offsets.sum()) + int(g.dst.sum())) % (2 ** 62)
        ),
        "source": None if source is None else int(source),
    }
    for key, value in extra.items():
        fp[key] = value
    return fp


@dataclass
class Checkpoint:
    """One loaded (or about-to-be-saved) checkpoint."""

    meta: Dict[str, Any]
    arrays: Dict[str, np.ndarray]
    path: Optional[Path] = None

    @property
    def iteration(self) -> int:
        return int(self.meta.get("iteration", 0))

    @property
    def engine(self) -> str:
        return str(self.meta.get("engine", ""))

    @property
    def phase(self) -> Optional[int]:
        phase = self.meta.get("phase")
        return None if phase is None else int(phase)

    def verify(self, expected: Dict[str, Any]) -> None:
        """Raise :class:`CheckpointMismatch` unless fingerprints agree."""
        found = self.meta.get("fingerprint")
        if found != expected:
            raise CheckpointMismatch(
                f"checkpoint {self.path or '<memory>'} does not match this "
                f"run: saved fingerprint {found!r} vs expected {expected!r}"
            )


def save_checkpoint(
    path: PathLike, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
) -> Path:
    """Atomically write one checkpoint; returns the final path."""
    fault_point("checkpoint.save")
    path = Path(path)
    payload: Dict[str, Any] = {
        "format": np.int64(CHECKPOINT_FORMAT),
        "meta_json": np.array(json.dumps(meta)),
    }
    for name, arr in arrays.items():
        if arr is None:
            continue
        payload[f"arr_{name}"] = np.asarray(arr)
    with atomic_path(path, suffix=".npz") as tmp:
        np.savez_compressed(tmp, **payload)
    _record_save(path, meta)
    return path


def load_checkpoint(path: PathLike) -> Checkpoint:
    """Read and structurally validate a checkpoint written by ``save``."""
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            files = set(data.files)
            if "format" not in files or "meta_json" not in files:
                raise CheckpointError(
                    f"{path} is not a checkpoint (missing format/meta)"
                )
            fmt = int(data["format"])
            if fmt != CHECKPOINT_FORMAT:
                raise CheckpointError(
                    f"unsupported checkpoint format {fmt} in {path}"
                )
            meta = json.loads(str(data["meta_json"]))
            arrays = {
                name[len("arr_"):]: data[name]
                for name in files
                if name.startswith("arr_")
            }
    except (OSError, ValueError, KeyError) as exc:
        if isinstance(exc, CheckpointError):
            raise
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    return Checkpoint(meta=meta, arrays=arrays, path=path)


def as_checkpoint(source: Union[Checkpoint, PathLike]) -> Checkpoint:
    """Accept an already-loaded :class:`Checkpoint` or a path to one."""
    if isinstance(source, Checkpoint):
        return source
    return load_checkpoint(source)


@dataclass
class Checkpointer:
    """Periodic checkpoint writer handed into engine loops.

    Engines call :meth:`maybe_save` after each completed iteration with
    their mutable state; every ``every``-th iteration is persisted.
    ``extra_meta`` lets the orchestrating caller (e.g. ``two_phase``)
    re-label the phase between engine runs, and ``constants`` carries
    state that never changes within a phase (the completion phase's
    ``blocked`` mask) without re-threading it through the engine.
    """

    path: PathLike
    every: int = 1
    fingerprint: Optional[Dict[str, Any]] = None
    engine: str = ""
    extra_meta: Dict[str, Any] = field(default_factory=dict)
    constants: Dict[str, np.ndarray] = field(default_factory=dict)
    saves: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError("checkpoint interval must be >= 1")

    def maybe_save(
        self, iteration: int, **arrays: Optional[np.ndarray]
    ) -> Optional[Path]:
        """Persist when ``iteration`` falls on the cadence; else no-op."""
        if iteration % self.every != 0:
            return None
        return self.save(iteration, **arrays)

    def save(self, iteration: int, **arrays: Optional[np.ndarray]) -> Path:
        meta = {
            "engine": self.engine,
            "iteration": int(iteration),
            "fingerprint": self.fingerprint,
            **self.extra_meta,
        }
        merged: Dict[str, np.ndarray] = dict(self.constants)
        for name, arr in arrays.items():
            if arr is not None:
                merged[name] = arr
        written = save_checkpoint(self.path, meta, merged)
        self.saves += 1
        return written


def _record_save(path: Path, meta: Dict[str, Any]) -> None:
    from repro.obs import journal as obs_journal
    from repro.obs import metrics as obs_metrics
    from repro.obs import runtime as obs_runtime

    if not obs_runtime._enabled:
        return
    obs_metrics.counter("resilience.checkpoint.saves").inc()
    obs_journal.emit({
        "type": "event", "name": "checkpoint.saved", "path": str(path),
        "iteration": meta.get("iteration"), "engine": meta.get("engine"),
        "phase": meta.get("phase"),
    })
