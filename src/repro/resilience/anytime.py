"""Anytime results: per-vertex precision certificates for partial runs.

The 2Phase algorithm is naturally interruption-friendly: after the Core
Phase most vertex values are already precise, and Theorem 1 (plus lattice
saturation) proves exactly which ones. When the Completion Phase hits its
budget we therefore do not have to discard the run — we return the partial
value array together with a certificate classifying every vertex:

* :data:`CERT_EXACT` — provably equal to the full-graph ground truth
  (Theorem 1 triangle certificate or lattice saturation; sound because the
  proxy is a subgraph, see :mod:`repro.core.triangle`);
* :data:`CERT_APPROX` — reached, value is a valid CG-side bound but may
  still improve on the full graph;
* :data:`CERT_UNREACHED` — still at the query's init value.

A completed (non-degraded) run certifies every reached vertex exact — that
is the 2Phase 100%-precision guarantee.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.queries.base import QuerySpec

CERT_UNREACHED = 0
CERT_APPROX = 1
CERT_EXACT = 2

CERT_NAMES = {
    CERT_UNREACHED: "unreached",
    CERT_APPROX: "approx",
    CERT_EXACT: "exact",
}


def precision_certificate(
    spec: QuerySpec,
    vals: np.ndarray,
    certified: Optional[np.ndarray] = None,
    complete: bool = False,
) -> np.ndarray:
    """Per-vertex ``int8`` certificate codes for a (possibly partial) run.

    ``certified`` is the boolean mask of provably precise vertices (the
    ``blocked`` mask the completion phase already computes: saturation plus
    optional Theorem 1 certificates). With ``complete=True`` every reached
    vertex is exact regardless of ``certified`` — the run converged.
    """
    if spec.multi_source:
        # Initialization reaches every vertex; completion decides exactness.
        reached = np.ones(vals.shape[0], dtype=bool)
    else:
        reached = spec.reached(vals)
    cert = np.where(reached, CERT_APPROX, CERT_UNREACHED).astype(np.int8)
    if complete:
        cert[reached] = CERT_EXACT
    elif certified is not None:
        cert[np.asarray(certified, dtype=bool)] = CERT_EXACT
    return cert


def certificate_counts(cert: np.ndarray) -> Dict[str, int]:
    """``{"exact": ..., "approx": ..., "unreached": ...}`` totals."""
    return {
        name: int(np.count_nonzero(cert == code))
        for code, name in CERT_NAMES.items()
    }


def summarize_certificate(cert: np.ndarray) -> str:
    """One-line human rendering for CLI output."""
    counts = certificate_counts(cert)
    n = max(1, int(cert.shape[0]))
    return (
        f"certificate: {counts['exact']} exact "
        f"({100.0 * counts['exact'] / n:.1f}%), "
        f"{counts['approx']} approx, {counts['unreached']} unreached"
    )
