"""Resilient execution: budgets, checkpoint/resume, anytime results, faults.

The layer that turns the reproduction's all-or-nothing runner into a
production-shaped one:

* :mod:`~repro.resilience.budget` — per-run :class:`Budget` (wall-clock
  deadline, cumulative iteration cap, frontier-memory cap) enforced at
  iteration boundaries in every engine; violations raise a structured
  :class:`BudgetExceeded`;
* :mod:`~repro.resilience.checkpoint` — atomic, fingerprinted snapshots of
  engine state so a killed run resumes mid-phase bit-identically;
* :mod:`~repro.resilience.anytime` — per-vertex precision certificates
  (Theorem-1 exact / CG-approximate / unreached) that make a
  budget-aborted ``two_phase`` return a usable partial result;
* :mod:`~repro.resilience.faults` — deterministic fault injection at named
  sites (env-var or programmatic) used to prove every guard fires;
* :mod:`~repro.resilience.retry` — exponential backoff for transient IO,
  with attempt counters in ``obs.REGISTRY``;
* :mod:`~repro.resilience.atomic` — temp-file + ``os.replace`` writes for
  every persisted artifact.
"""

from repro.resilience.anytime import (
    CERT_APPROX,
    CERT_EXACT,
    CERT_NAMES,
    CERT_UNREACHED,
    certificate_counts,
    precision_certificate,
    summarize_certificate,
)
from repro.resilience.atomic import (
    atomic_open,
    atomic_path,
    atomic_write_bytes,
    atomic_write_text,
)
from repro.resilience.budget import Budget, BudgetExceeded, BudgetReuseError
from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointMismatch,
    Checkpointer,
    as_checkpoint,
    load_checkpoint,
    run_fingerprint,
    save_checkpoint,
)
from repro.resilience.faults import (
    InjectedCrash,
    InjectedFault,
    InjectedIOError,
    fault_point,
)
from repro.resilience.retry import backoff_delays, retry_call, retrying

__all__ = [
    "Budget",
    "BudgetExceeded",
    "BudgetReuseError",
    "Checkpoint",
    "CheckpointError",
    "CheckpointMismatch",
    "Checkpointer",
    "as_checkpoint",
    "load_checkpoint",
    "run_fingerprint",
    "save_checkpoint",
    "CERT_APPROX",
    "CERT_EXACT",
    "CERT_NAMES",
    "CERT_UNREACHED",
    "certificate_counts",
    "precision_certificate",
    "summarize_certificate",
    "InjectedCrash",
    "InjectedFault",
    "InjectedIOError",
    "fault_point",
    "atomic_open",
    "atomic_path",
    "atomic_write_bytes",
    "atomic_write_text",
    "backoff_delays",
    "retry_call",
    "retrying",
]
