"""Crash-safe file writes: temp file in the target directory + atomic rename.

POSIX ``os.replace`` within one filesystem is atomic, so readers (and the
next process after a crash) only ever observe either the previous complete
file or the new complete file — never a truncated artifact. Every persisted
product in the repo (results JSON, journals, artifact npz, baselines,
checkpoints, WAL snapshots) funnels through these helpers.

The rename is preceded by an fsync of the temp file: rename-atomicity
alone only orders the *names*, not the *data* — after a power loss a
renamed-but-unsynced file can legally read back empty. The concurrency
analyzer's RC105 rule enforces this fsync-before-rename discipline on
any code that calls ``os.replace``/``os.rename`` directly.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, Optional, Union

PathLike = Union[str, Path]


@contextmanager
def atomic_path(path: PathLike, suffix: str = "") -> Iterator[Path]:
    """Yield a temp path next to ``path``; atomically rename on success.

    The temp file lives in the destination directory (same filesystem, so
    the final ``os.replace`` is atomic) and is removed if the body raises.
    ``suffix`` is appended to the temp name — writers like
    ``numpy.savez`` that append their own extension when one is missing
    need the temp path to already end in ``.npz``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=suffix or ".tmp", dir=path.parent
    )
    os.close(fd)
    tmp = Path(tmp_name)
    try:
        yield tmp
        _fsync_file(tmp)
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def _fsync_file(path: Path) -> None:
    """Flush ``path``'s data to stable storage before it is renamed into
    place — otherwise a crash can surface the new name over empty data."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@contextmanager
def atomic_open(
    path: PathLike, mode: str = "w", newline: Optional[str] = None
) -> Iterator[IO]:
    """Open-for-write that only materializes ``path`` on a clean close.

    ``newline`` is forwarded to :meth:`Path.open` (text modes only) so csv
    writers can request ``newline=""`` per the :mod:`csv` docs.
    """
    if "r" in mode or "a" in mode or "+" in mode:
        raise ValueError(f"atomic_open is write-only, got mode {mode!r}")
    with atomic_path(path) as tmp:
        fh = tmp.open(mode) if "b" in mode else tmp.open(mode, newline=newline)
        try:
            yield fh
        finally:
            fh.close()


def atomic_write_text(path: PathLike, text: str) -> Path:
    """Atomically replace ``path`` with ``text``; returns the path."""
    path = Path(path)
    with atomic_open(path) as fh:
        fh.write(text)
    return path


def atomic_write_bytes(path: PathLike, data: bytes) -> Path:
    """Atomically replace ``path`` with ``data``; returns the path."""
    path = Path(path)
    with atomic_open(path, "wb") as fh:
        fh.write(data)
    return path
