"""Deterministic fault injection at named sites.

Hot paths call :func:`fault_point` with a stable site name; when a fault is
installed for that site the Nth hit fires it — a crash (raises
:class:`InjectedCrash`), an IO error (raises :class:`InjectedIOError`,
which is also an :class:`OSError` so retry policies treat it as
transient), or a fixed delay. With nothing installed a fault point is one
empty-dict check, so the hooks stay in production code permanently.

Faults come from two places:

* programmatically — :func:`install` / the :func:`injected` context
  manager (what the failure-mode test suite uses);
* the ``REPRO_FAULTS`` environment variable, parsed at import and on
  :func:`configure_from_env` — what lets CI kill a checkpointing CLI run
  mid-flight. Syntax: semicolon-separated ``site:kind:hit[:param]``
  entries, e.g. ``engine.frontier.iteration:crash:40`` (crash at the 40th
  hit) or ``checkpoint.save:delay:1:0.25`` (sleep 250 ms at the first
  save). A hit spec with a ``+`` suffix (``serve.worker.request:crash:2+``)
  makes the fault *repeat*: it fires on every hit from that number on —
  what poisoned-request tests use to fail the same request twice.

Known sites (grep for ``fault_point`` for ground truth):
``engine.frontier.iteration``, ``engine.scalar.pop``,
``engine.delta_stepping.round``, ``engine.batch.round``,
``engine.async.round``, ``engine.pull.round``, ``twophase.core.begin``,
``twophase.completion.begin``, ``checkpoint.save``, ``io.load``,
``artifacts.read``, ``journal.close``, ``serve.worker.request``,
``obs.live.profiler.sample``, ``obs.live.exporter.serve``,
``graph.mutate.add``, ``graph.mutate.remove``, ``evolve.apply``,
``evolve.rebuild``, ``evolve.swap``, ``evolve.supervisor.tick``,
``wal.append``, ``wal.fsync``, ``wal.rotate``, ``snapshot.write``.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from contextlib import contextmanager

ENV_VAR = "REPRO_FAULTS"
KINDS = ("crash", "ioerror", "delay")

#: Serializes hit counting so concurrent serve workers sharing a site see
#: an exact hit sequence (held only while a fault is armed).
_HITS_LOCK = threading.Lock()


class InjectedFault(RuntimeError):
    """Base class for injected failures (never raised by real code paths)."""


class InjectedCrash(InjectedFault):
    """Simulates a process being killed at the fault point."""


class InjectedIOError(InjectedFault, OSError):
    """Simulates a transient IO failure (retryable: it is an OSError)."""


@dataclass
class Fault:
    """One installed fault: fire ``kind`` on hit number ``at_hit``.

    With ``repeat=True`` the fault fires on *every* hit from ``at_hit``
    on, instead of exactly once.
    """

    site: str
    kind: str
    at_hit: int = 1
    param: Optional[float] = None
    repeat: bool = False
    hits: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; use {KINDS}")
        if self.at_hit < 1:
            raise ValueError("at_hit is 1-based and must be >= 1")


_FAULTS: Dict[str, Fault] = {}


def install(
    site: str, kind: str, at_hit: int = 1, param: Optional[float] = None,
    repeat: bool = False,
) -> Fault:
    """Arm ``site``; replaces any fault already installed there."""
    fault = Fault(site, kind, at_hit, param, repeat)
    _FAULTS[site] = fault
    return fault


def clear() -> None:
    """Disarm every installed fault."""
    _FAULTS.clear()


def installed() -> Dict[str, Fault]:
    """The live site -> fault map (primarily for diagnostics/tests)."""
    return dict(_FAULTS)


@contextmanager
def injected(
    site: str, kind: str, at_hit: int = 1, param: Optional[float] = None,
    repeat: bool = False,
) -> Iterator[Fault]:
    """Scoped :func:`install`; restores the previous arming on exit."""
    prior = _FAULTS.get(site)
    fault = install(site, kind, at_hit, param, repeat)
    try:
        yield fault
    finally:
        if _FAULTS.get(site) is fault:
            if prior is None:
                _FAULTS.pop(site, None)
            else:
                _FAULTS[site] = prior


def parse_spec(spec: str) -> Dict[str, Fault]:
    """Parse a ``REPRO_FAULTS`` string into site -> :class:`Fault`."""
    faults: Dict[str, Fault] = {}
    for entry in spec.replace(",", ";").split(";"):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) < 2:
            raise ValueError(
                f"bad fault entry {entry!r}; expected site:kind[:hit[:param]]"
            )
        site, kind = parts[0], parts[1]
        hit_spec = parts[2] if len(parts) > 2 and parts[2] else "1"
        repeat = hit_spec.endswith("+")
        at_hit = int(hit_spec.rstrip("+") or "1")
        param = float(parts[3]) if len(parts) > 3 and parts[3] else None
        faults[site] = Fault(site, kind, at_hit, param, repeat)
    return faults


def configure_from_env(environ: Optional[Dict[str, str]] = None) -> int:
    """(Re)install faults from ``REPRO_FAULTS``; returns how many."""
    spec = (environ if environ is not None else os.environ).get(ENV_VAR, "")
    if not spec:
        return 0
    parsed = parse_spec(spec)
    _FAULTS.update(parsed)
    return len(parsed)


def _record(fault: Fault) -> None:
    from repro.obs import journal as obs_journal
    from repro.obs import metrics as obs_metrics
    from repro.obs import runtime as obs_runtime
    from repro.obs import trace as obs_trace

    if not obs_runtime._enabled:
        return
    obs_metrics.counter(
        "resilience.faults.injected", site=fault.site, kind=fault.kind
    ).inc()
    event = {
        "type": "event", "name": "fault.injected", "site": fault.site,
        "kind": fault.kind, "hit": fault.hits,
    }
    # Chaos runs are attributable per-request: a fault that fires while a
    # worker executes a traced request carries that request's trace id.
    trace_id = obs_trace.current_trace_id()
    if trace_id is not None:
        event["trace"] = trace_id
    obs_journal.emit(event)


def fault_point(site: str) -> None:
    """Fire the installed fault for ``site`` when its hit count is reached."""
    if not _FAULTS:
        return
    fault = _FAULTS.get(site)
    if fault is None:
        return
    with _HITS_LOCK:
        fault.hits += 1
        fire = (
            fault.hits >= fault.at_hit if fault.repeat
            else fault.hits == fault.at_hit
        )
    if not fire:
        return
    _record(fault)
    if fault.kind == "crash":
        raise InjectedCrash(f"injected crash at {site} (hit {fault.hits})")
    if fault.kind == "ioerror":
        raise InjectedIOError(
            f"injected IO error at {site} (hit {fault.hits})"
        )
    time.sleep(fault.param if fault.param is not None else 0.01)


configure_from_env()
