"""Execution budgets: bounded wall-clock, iterations, and frontier memory.

A :class:`Budget` is handed to an engine (or to :func:`repro.core.twophase.
two_phase`, which threads it through both phases) and checked at iteration
boundaries via :meth:`Budget.tick`. Exceeding any limit raises a structured
:class:`BudgetExceeded` instead of letting the run hang or exhaust memory —
callers can catch it to degrade gracefully (see :mod:`repro.resilience.
anytime`) or let it propagate as a loud, attributable failure.

Limits are cumulative across every engine run that shares the budget
object: the deadline clock starts at the first ``tick`` (or an explicit
:meth:`Budget.start`), and ``max_iterations`` counts all ticks, so a
two-phase evaluation budgeted at 100 iterations spends them across both
phases.

Sharing across phases of *one* run is the feature; sharing across *two*
runs is a bug — the second run would inherit the first run's elapsed
clock and iteration count silently. Top-level entry points
(:func:`repro.core.twophase.two_phase`, the serve worker) therefore
claim the budget with :meth:`Budget.begin_run`, which raises
:class:`BudgetReuseError` on a second claim; call :meth:`Budget.reset`
to deliberately recycle the object for a fresh run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class BudgetReuseError(ValueError):
    """A started :class:`Budget` was claimed for a second run.

    Deliberately *not* a :class:`RuntimeError` subclass: reuse is a
    caller bug, and handlers watching for :class:`BudgetExceeded` must
    never absorb it.
    """


class BudgetExceeded(RuntimeError):
    """A budget limit was hit at an iteration boundary.

    Attributes
    ----------
    limit:
        Which limit fired: ``"deadline_s"``, ``"max_iterations"``, or
        ``"max_frontier_bytes"``.
    site:
        The checking site (``"engine.frontier"``, ``"twophase.completion"``,
        ...), so logs attribute the abort to the right loop.
    observed / threshold:
        The measured value and the configured limit it crossed.
    iteration:
        Cumulative iteration count at the abort.
    elapsed_s:
        Seconds since the budget clock started.
    """

    def __init__(
        self,
        limit: str,
        site: str,
        observed: float,
        threshold: float,
        iteration: int,
        elapsed_s: float,
    ) -> None:
        super().__init__(
            f"budget exceeded at {site}: {limit}={threshold:g} "
            f"(observed {observed:g} after {iteration} iterations, "
            f"{elapsed_s:.3f}s)"
        )
        self.limit = limit
        self.site = site
        self.observed = observed
        self.threshold = threshold
        self.iteration = iteration
        self.elapsed_s = elapsed_s

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready view for journals and CLI output."""
        return {
            "limit": self.limit,
            "site": self.site,
            "observed": self.observed,
            "threshold": self.threshold,
            "iteration": self.iteration,
            "elapsed_s": self.elapsed_s,
        }


@dataclass
class Budget:
    """Per-run execution limits; ``None`` disables a dimension.

    Attributes
    ----------
    deadline_s:
        Wall-clock limit in seconds, measured from the first check.
    max_iterations:
        Cumulative iteration-boundary count across all engine runs
        sharing this budget (worklist engines count pops).
    max_frontier_bytes:
        Upper bound on the active frontier's array size — the proxy for
        runaway frontier memory on high-fanout graphs.
    """

    deadline_s: Optional[float] = None
    max_iterations: Optional[int] = None
    max_frontier_bytes: Optional[int] = None
    _t0: Optional[float] = field(default=None, init=False, repr=False)
    iterations: int = field(default=0, init=False, repr=False)
    _claimed: bool = field(default=False, init=False, repr=False)

    def start(self) -> "Budget":
        """Start the deadline clock (idempotent); returns self."""
        if self._t0 is None:
            self._t0 = time.perf_counter()
        return self

    def begin_run(self, site: str = "") -> "Budget":
        """Claim this budget for one top-level run and start its clock.

        A budget that has already been claimed (or merely started — its
        clock is running, so a second run would inherit the elapsed time)
        raises :class:`BudgetReuseError`. Engines themselves only
        ``tick``; the claim lives at run entry points so one budget still
        spans both 2Phase phases.
        """
        if self._claimed or self._t0 is not None:
            raise BudgetReuseError(
                f"budget already used ({self.iterations} iterations, "
                f"{self.elapsed_s:.3f}s elapsed)"
                + (f" at {site}" if site else "")
                + "; call reset() to recycle it for a fresh run"
            )
        self._claimed = True
        return self.start()

    def reset(self) -> "Budget":
        """Clear the clock, iteration count, and run claim; returns self."""
        self._t0 = None
        self.iterations = 0
        self._claimed = False
        return self

    @property
    def elapsed_s(self) -> float:
        return 0.0 if self._t0 is None else time.perf_counter() - self._t0

    def remaining_s(self) -> Optional[float]:
        """Seconds left before the deadline, or None when unbounded."""
        if self.deadline_s is None:
            return None
        return max(0.0, self.deadline_s - self.elapsed_s)

    def _raise(self, limit: str, site: str, observed: float,
               threshold: float) -> None:
        exc = BudgetExceeded(
            limit, site, observed, threshold, self.iterations, self.elapsed_s
        )
        _record_exceeded(exc)
        raise exc

    def check_deadline(self, site: str) -> None:
        """Deadline-only check for non-iteration boundaries."""
        self.start()
        if self.deadline_s is not None:
            elapsed = self.elapsed_s
            if elapsed > self.deadline_s:
                self._raise("deadline_s", site, elapsed, self.deadline_s)

    def tick(self, site: str, frontier_bytes: Optional[int] = None) -> None:
        """Account one completed iteration boundary and enforce all limits."""
        self.start()
        self.iterations += 1
        if (
            self.max_iterations is not None
            and self.iterations > self.max_iterations
        ):
            self._raise(
                "max_iterations", site, self.iterations, self.max_iterations
            )
        if self.deadline_s is not None:
            elapsed = self.elapsed_s
            if elapsed > self.deadline_s:
                self._raise("deadline_s", site, elapsed, self.deadline_s)
        if (
            self.max_frontier_bytes is not None
            and frontier_bytes is not None
            and frontier_bytes > self.max_frontier_bytes
        ):
            self._raise(
                "max_frontier_bytes", site, frontier_bytes,
                self.max_frontier_bytes,
            )


def _record_exceeded(exc: BudgetExceeded) -> None:
    """Journal + metrics trail for an abort (only while telemetry is on)."""
    from repro.obs import journal as obs_journal
    from repro.obs import metrics as obs_metrics
    from repro.obs import runtime as obs_runtime

    if not obs_runtime._enabled:
        return
    obs_metrics.counter(
        "resilience.budget.exceeded", limit=exc.limit, site=exc.site
    ).inc()
    obs_journal.emit(
        {"type": "event", "name": "budget.exceeded", **exc.as_dict()}
    )
