"""Batch edge insertions and deletions over immutable CSR graphs.

Graphs here are immutable; evolution is modeled functionally — a batch of
changes produces a new CSR (the approach of snapshot-based evolving-graph
systems). Used by :mod:`repro.core.evolving` to study core-graph
maintenance under churn.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.graph.builder import EdgeTuple, from_arrays
from repro.graph.csr import Graph


def add_edges(g: Graph, edges: Iterable[EdgeTuple]) -> Graph:
    """A new graph with ``edges`` appended (same vertex set).

    Weighted graphs require ``(u, v, w)`` tuples; unweighted ``(u, v)``.
    """
    edges = list(edges)
    if not edges:
        return g
    n = g.num_vertices
    new_src = np.array([e[0] for e in edges], dtype=np.int64)
    new_dst = np.array([e[1] for e in edges], dtype=np.int64)
    if new_src.size and (
        min(new_src.min(), new_dst.min()) < 0
        or max(new_src.max(), new_dst.max()) >= n
    ):
        raise ValueError("inserted edge endpoints out of range")
    if g.is_weighted:
        if any(len(e) != 3 for e in edges):
            raise ValueError("weighted graph requires (u, v, w) insertions")
        new_w = np.array([e[2] for e in edges], dtype=np.float64)
        weights = np.concatenate([g.weights, new_w])
    else:
        if any(len(e) != 2 for e in edges):
            raise ValueError("unweighted graph requires (u, v) insertions")
        weights = None
    src = np.concatenate([g.edge_sources(), new_src])
    dst = np.concatenate([g.dst, new_dst])
    return from_arrays(n, src, dst, weights)


def remove_edges(
    g: Graph, pairs: Iterable[Tuple[int, int]]
) -> Tuple[Graph, np.ndarray]:
    """A new graph without the given ``(u, v)`` pairs.

    Removes *all* parallel copies of each named pair. Returns
    ``(new_graph, removed_mask)`` where the mask is over ``g``'s edges.
    """
    pairs = list(pairs)
    n = g.num_vertices
    removed = np.zeros(g.num_edges, dtype=bool)
    if not pairs:
        return g, removed
    src = g.edge_sources()
    keys = src * n + g.dst
    doomed = np.array([u * n + v for u, v in pairs], dtype=np.int64)
    removed = np.isin(keys, doomed)
    from repro.graph.transform import edge_subgraph

    return edge_subgraph(g, ~removed), removed


def preferential_edge_batch(
    g: Graph,
    count: int,
    seed: int = 0,
) -> list:
    """Preferential-attachment insertions: endpoints biased by degree.

    Realistic social-graph churn — new edges attach to hubs — so a stale
    core graph's precision decays far more slowly than under uniform
    insertions (hub-adjacent edges tend to parallel existing solution
    paths). Compare with :func:`random_edge_batch` in the evolving study.
    """
    rng = np.random.default_rng(seed)
    n = g.num_vertices
    deg = (g.out_degree() + g.in_degree() + 1).astype(np.float64)
    p = deg / deg.sum()
    src = rng.choice(n, count, p=p)
    dst = rng.choice(n, count, p=p)
    if g.is_weighted:
        w = rng.choice(g.weights, count) if g.num_edges else np.ones(count)
        return [
            (int(u), int(v), float(x)) for u, v, x in zip(src, dst, w)
        ]
    return [(int(u), int(v)) for u, v in zip(src, dst)]


def random_edge_batch(
    g: Graph,
    count: int,
    seed: int = 0,
    weight_like: bool = True,
) -> list:
    """Random plausible insertions (endpoints uniform, weights resampled
    from the existing distribution). Test/benchmark fodder for churn."""
    rng = np.random.default_rng(seed)
    n = g.num_vertices
    src = rng.integers(0, n, count)
    dst = rng.integers(0, n, count)
    if g.is_weighted and weight_like:
        if g.num_edges:
            w = rng.choice(g.weights, count)
        else:
            w = np.ones(count)
        return [
            (int(u), int(v), float(x)) for u, v, x in zip(src, dst, w)
        ]
    return [(int(u), int(v)) for u, v in zip(src, dst)]
