"""Batch edge insertions and deletions over immutable CSR graphs.

Graphs here are immutable; evolution is modeled functionally — a batch of
changes produces a new CSR (the approach of snapshot-based evolving-graph
systems). Used by :mod:`repro.core.evolving` to study core-graph
maintenance under churn and by :mod:`repro.evolve` to drive live mutation
streams against the query service.

Batch semantics are strict by construction: ``add_edges`` rejects
self-loops and duplicate pairs (within the batch or against the existing
edge set) with typed errors instead of silently inflating CSR degree, and
``remove_edges(strict=True)`` names the first missing pair. The batch
generators only emit valid batches, so callers can feed them straight in.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.graph.builder import EdgeTuple, from_arrays
from repro.graph.csr import Graph
from repro.resilience.faults import fault_point


class MutationError(ValueError):
    """Base for typed batch-mutation failures."""


class SelfLoopError(MutationError):
    """An insertion batch contained a ``(u, u)`` self-loop."""

    def __init__(self, vertex: int) -> None:
        self.vertex = int(vertex)
        super().__init__(f"self-loop insertion ({vertex}, {vertex}) rejected")


class DuplicateEdgeError(MutationError):
    """An insertion batch would duplicate an edge (existing or in-batch)."""

    def __init__(self, pair: Tuple[int, int], where: str) -> None:
        self.pair = (int(pair[0]), int(pair[1]))
        self.where = where
        super().__init__(
            f"duplicate edge insertion {self.pair} rejected ({where})"
        )


class EdgeNotFoundError(MutationError):
    """A strict deletion batch named a pair the graph does not contain."""

    def __init__(self, pair: Tuple[int, int]) -> None:
        self.pair = (int(pair[0]), int(pair[1]))
        super().__init__(f"cannot remove missing edge {self.pair}")


def _edge_keys(g: Graph) -> np.ndarray:
    """Per-edge ``u * n + v`` keys (collision-free for in-range ids)."""
    return g.edge_sources() * np.int64(g.num_vertices) + g.dst


def add_edges(g: Graph, edges: Iterable[EdgeTuple]) -> Graph:
    """A new graph with ``edges`` appended (same vertex set).

    Weighted graphs require ``(u, v, w)`` tuples; unweighted ``(u, v)``.

    Raises :class:`SelfLoopError` for ``(u, u)`` entries and
    :class:`DuplicateEdgeError` when a pair repeats within the batch or
    already exists in ``g`` — silent parallel edges would inflate CSR
    degree and skew every degree-based heuristic downstream.
    """
    edges = list(edges)
    if not edges:
        return g
    fault_point("graph.mutate.add")
    n = g.num_vertices
    new_src = np.array([e[0] for e in edges], dtype=np.int64)
    new_dst = np.array([e[1] for e in edges], dtype=np.int64)
    if new_src.size and (
        min(new_src.min(), new_dst.min()) < 0
        or max(new_src.max(), new_dst.max()) >= n
    ):
        raise MutationError("inserted edge endpoints out of range")
    existing = set(int(k) for k in _edge_keys(g))
    seen: Set[int] = set()
    for u, v in zip(new_src, new_dst):
        if u == v:
            raise SelfLoopError(int(u))
        key = int(u) * n + int(v)
        if key in existing:
            raise DuplicateEdgeError((int(u), int(v)), "already in graph")
        if key in seen:
            raise DuplicateEdgeError((int(u), int(v)), "repeated in batch")
        seen.add(key)
    if g.is_weighted:
        if any(len(e) != 3 for e in edges):
            raise MutationError("weighted graph requires (u, v, w) insertions")
        new_w = np.array([e[2] for e in edges], dtype=np.float64)
        weights = np.concatenate([g.weights, new_w])
    else:
        if any(len(e) != 2 for e in edges):
            raise MutationError("unweighted graph requires (u, v) insertions")
        weights = None
    src = np.concatenate([g.edge_sources(), new_src])
    dst = np.concatenate([g.dst, new_dst])
    return from_arrays(n, src, dst, weights)


def remove_edges(
    g: Graph, pairs: Iterable[Tuple[int, int]], strict: bool = False
) -> Tuple[Graph, np.ndarray]:
    """A new graph without the given ``(u, v)`` pairs.

    Removes *all* parallel copies of each named pair. Returns
    ``(new_graph, removed_mask)`` where the mask is over ``g``'s edges.

    With ``strict=True``, raises :class:`EdgeNotFoundError` naming the
    first pair absent from ``g`` (default keeps the historical
    missing-pair-is-a-noop behavior for idempotent replays).
    """
    pairs = list(pairs)
    n = g.num_vertices
    removed = np.zeros(g.num_edges, dtype=bool)
    if not pairs:
        return g, removed
    fault_point("graph.mutate.remove")
    keys = _edge_keys(g)
    doomed = np.array([u * n + v for u, v in pairs], dtype=np.int64)
    if strict:
        present = np.isin(doomed, keys)
        if not bool(present.all()):
            missing = pairs[int(np.flatnonzero(~present)[0])]
            raise EdgeNotFoundError((int(missing[0]), int(missing[1])))
    removed = np.isin(keys, doomed)
    from repro.graph.transform import edge_subgraph

    return edge_subgraph(g, ~removed), removed


def _weights_for(
    g: Graph, rng: np.random.Generator, count: int, weight_like: bool
) -> Optional[np.ndarray]:
    if not (g.is_weighted and weight_like):
        return None
    if g.num_edges:
        return rng.choice(g.weights, count)
    return np.ones(count, dtype=np.float64)


def _filter_batch(
    g: Graph,
    count: int,
    draw,  # (k) -> (src_array, dst_array)
) -> List[Tuple[int, int]]:
    """Collect ``count`` distinct, loop-free, not-yet-present pairs.

    Draws in chunks from ``draw`` and discards invalid candidates, so the
    result is always a legal ``add_edges`` batch. Deterministic for a
    deterministic ``draw``.
    """
    n = g.num_vertices
    capacity = n * (n - 1) - g.num_edges
    if count > max(capacity, 0):
        raise MutationError(
            f"cannot draw {count} new edges: only {capacity} non-edges left"
        )
    taken = set(int(k) for k in _edge_keys(g))
    chosen: List[Tuple[int, int]] = []
    attempts = 0
    while len(chosen) < count:
        attempts += 1
        if attempts > 64:
            raise MutationError(
                "edge batch sampling failed to converge; graph too dense"
            )
        k = max(2 * (count - len(chosen)), 16)
        src, dst = draw(k)
        for u, v in zip(src, dst):
            if u == v:
                continue
            key = int(u) * n + int(v)
            if key in taken:
                continue
            taken.add(key)
            chosen.append((int(u), int(v)))
            if len(chosen) == count:
                break
    return chosen


def preferential_edge_batch(
    g: Graph,
    count: int,
    seed: int = 0,
) -> list:
    """Preferential-attachment insertions: endpoints biased by degree.

    Realistic social-graph churn — new edges attach to hubs — so a stale
    core graph's precision decays far more slowly than under uniform
    insertions (hub-adjacent edges tend to parallel existing solution
    paths). Compare with :func:`random_edge_batch` in the evolving study.

    The batch is always valid for :func:`add_edges`: self-loops and
    duplicates are filtered out, topping up deterministically per seed.
    """
    rng = np.random.default_rng(seed)
    n = g.num_vertices
    deg = (g.out_degree() + g.in_degree() + 1).astype(np.float64)
    p = deg / deg.sum()

    def draw(k: int) -> Tuple[np.ndarray, np.ndarray]:
        return rng.choice(n, k, p=p), rng.choice(n, k, p=p)

    pairs = _filter_batch(g, count, draw)
    w = _weights_for(g, rng, count, weight_like=True)
    if w is None:
        return pairs
    return [(u, v, float(x)) for (u, v), x in zip(pairs, w)]


def random_edge_batch(
    g: Graph,
    count: int,
    seed: int = 0,
    weight_like: bool = True,
) -> list:
    """Random plausible insertions (endpoints uniform, weights resampled
    from the existing distribution). Test/benchmark fodder for churn.

    The batch is always valid for :func:`add_edges`: self-loops and
    duplicates are filtered out, topping up deterministically per seed.
    """
    rng = np.random.default_rng(seed)
    n = g.num_vertices

    def draw(k: int) -> Tuple[np.ndarray, np.ndarray]:
        return rng.integers(0, n, k), rng.integers(0, n, k)

    pairs = _filter_batch(g, count, draw)
    w = _weights_for(g, rng, count, weight_like)
    if w is None:
        return pairs
    return [(u, v, float(x)) for (u, v), x in zip(pairs, w)]


def sample_edge_pairs(g: Graph, count: int, seed: int = 0) -> list:
    """Sample ``count`` distinct existing ``(u, v)`` pairs for deletion.

    Deterministic per seed; returns fewer than ``count`` pairs only when
    the graph has fewer distinct pairs than requested.
    """
    rng = np.random.default_rng(seed)
    keys = np.unique(_edge_keys(g))
    take = min(count, keys.size)
    picked = rng.choice(keys, take, replace=False)
    n = g.num_vertices
    return [(int(k) // n, int(k) % n) for k in picked]
