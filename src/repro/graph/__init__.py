"""Graph substrate: CSR storage, construction, transforms, weights, and I/O."""

from repro.graph.csr import Graph
from repro.graph.builder import GraphBuilder, from_edges
from repro.graph.transform import (
    reverse,
    symmetrize,
    edge_subgraph,
    vertex_induced_subgraph,
)
from repro.graph.weights import ligra_weights, uniform_weights
from repro.graph.degree import top_degree_vertices, degree_histogram
from repro.graph.edgelist import read_edge_list, write_edge_list
from repro.graph.partition import partition_vertices, Partitioning
from repro.graph.validate import validate_graph, ValidationReport

__all__ = [
    "Graph",
    "GraphBuilder",
    "from_edges",
    "reverse",
    "symmetrize",
    "edge_subgraph",
    "vertex_induced_subgraph",
    "ligra_weights",
    "uniform_weights",
    "top_degree_vertices",
    "degree_histogram",
    "read_edge_list",
    "write_edge_list",
    "partition_vertices",
    "Partitioning",
    "validate_graph",
    "ValidationReport",
]
