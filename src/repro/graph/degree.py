"""Degree utilities: hub selection and degree histograms.

The paper selects the 20 highest-degree vertices as hubs ("high degree
vertices are good proxies for high centrality vertices" in power-law graphs)
and compares FG-vs-CG degree distributions (Fig. 9) and top-k overlap
(Table 17).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.csr import Graph


def total_degree(g: Graph) -> np.ndarray:
    """Out-degree + in-degree per vertex."""
    return g.out_degree() + g.reverse().out_degree()


def top_degree_vertices(g: Graph, k: int, mode: str = "total") -> np.ndarray:
    """The ``k`` highest-degree vertices, ties broken by lower vertex id.

    ``mode`` selects the degree notion: ``"out"``, ``"in"``, or ``"total"``.
    """
    if mode == "out":
        deg = g.out_degree()
    elif mode == "in":
        deg = g.reverse().out_degree()
    elif mode == "total":
        deg = total_degree(g)
    else:
        raise ValueError(f"unknown degree mode: {mode!r}")
    k = min(k, g.num_vertices)
    # Sort by (-degree, id): stable deterministic hub choice.
    order = np.lexsort((np.arange(g.num_vertices), -deg))
    return order[:k]


def degree_histogram(g: Graph, mode: str = "out") -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(degrees, counts)`` — the #vertices at each occurring degree.

    This is the data behind the paper's Fig. 9 log-log degree plot.
    """
    if mode == "out":
        deg = g.out_degree()
    elif mode == "in":
        deg = g.reverse().out_degree()
    elif mode == "total":
        deg = total_degree(g)
    else:
        raise ValueError(f"unknown degree mode: {mode!r}")
    degrees, counts = np.unique(deg, return_counts=True)
    return degrees, counts
