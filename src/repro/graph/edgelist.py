"""Plain-text edge-list I/O (SNAP-style ``u v [w]`` lines)."""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.graph.builder import from_arrays
from repro.graph.csr import Graph


def write_edge_list(g: Graph, path: Union[str, Path]) -> None:
    """Write ``g`` as whitespace-separated ``u v [w]`` lines."""
    path = Path(path)
    src = g.edge_sources()
    with path.open("w") as fh:
        if g.is_weighted:
            for u, v, w in zip(src, g.dst, g.weights):
                fh.write(f"{u} {v} {w:.10g}\n")
        else:
            for u, v in zip(src, g.dst):
                fh.write(f"{u} {v}\n")


def read_edge_list(
    path: Union[str, Path],
    num_vertices: Optional[int] = None,
    comments: str = "#",
) -> Graph:
    """Read a SNAP-style edge list; weighted iff lines carry a third column."""
    src, dst, weights = [], [], []
    weighted: Optional[bool] = None
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith(comments):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise ValueError(f"{path}:{lineno}: expected 2 or 3 columns")
            has_weight = len(parts) == 3
            if weighted is None:
                weighted = has_weight
            elif weighted != has_weight:
                raise ValueError(f"{path}:{lineno}: mixed weighted/unweighted rows")
            src.append(int(parts[0]))
            dst.append(int(parts[1]))
            if has_weight:
                weights.append(float(parts[2]))
    if not src:
        if num_vertices is None:
            raise ValueError(f"{path}: empty edge list and no num_vertices given")
        return from_arrays(num_vertices, [], [], None)
    if num_vertices is None:
        num_vertices = int(max(max(src), max(dst))) + 1
    w = np.asarray(weights) if weighted else None
    return from_arrays(num_vertices, src, dst, w)
