"""Construction of CSR graphs from edge lists."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graph.csr import Graph

EdgeTuple = Union[Tuple[int, int], Tuple[int, int, float]]


def _csr_from_arrays(
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    weights: Optional[np.ndarray],
    dedup: bool,
) -> Graph:
    """Sort (src, dst) into CSR. Optionally drop duplicate (u, v) pairs.

    When duplicates are dropped the *first* occurrence in sorted order wins;
    callers that care about which parallel edge survives should pre-sort.
    """
    if src.size:
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        if weights is not None:
            weights = weights[order]
        if dedup:
            keep = np.empty(src.size, dtype=bool)
            keep[0] = True
            keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
            src, dst = src[keep], dst[keep]
            if weights is not None:
                weights = weights[keep]
    counts = np.bincount(src, minlength=num_vertices)
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return Graph(offsets, dst, weights)


def from_arrays(
    num_vertices: int,
    src: Sequence[int],
    dst: Sequence[int],
    weights: Optional[Sequence[float]] = None,
    dedup: bool = False,
) -> Graph:
    """Build a :class:`Graph` from parallel source/destination/weight arrays."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError("src and dst must have the same shape")
    if src.size and (src.min() < 0 or src.max() >= num_vertices):
        raise ValueError("src contains out-of-range vertex ids")
    if dst.size and (dst.min() < 0 or dst.max() >= num_vertices):
        raise ValueError("dst contains out-of-range vertex ids")
    w = None if weights is None else np.asarray(weights, dtype=np.float64)
    if w is not None and w.shape != src.shape:
        raise ValueError("weights must parallel src/dst")
    return _csr_from_arrays(num_vertices, src, dst, w, dedup)


def from_edges(
    edges: Iterable[EdgeTuple],
    num_vertices: Optional[int] = None,
    dedup: bool = False,
) -> Graph:
    """Build a :class:`Graph` from ``(u, v)`` or ``(u, v, w)`` tuples.

    The graph is weighted iff the first edge carries a weight; mixing the two
    forms raises ``ValueError``.
    """
    edges = list(edges)
    if not edges:
        if num_vertices is None:
            raise ValueError("cannot infer num_vertices from an empty edge list")
        return from_arrays(num_vertices, [], [], None)
    weighted = len(edges[0]) == 3
    if any((len(e) == 3) != weighted for e in edges):
        raise ValueError("all edges must be uniformly weighted or unweighted")
    src = np.fromiter((e[0] for e in edges), dtype=np.int64, count=len(edges))
    dst = np.fromiter((e[1] for e in edges), dtype=np.int64, count=len(edges))
    weights = None
    if weighted:
        weights = np.fromiter(
            (e[2] for e in edges), dtype=np.float64, count=len(edges)
        )
    if num_vertices is None:
        num_vertices = int(max(src.max(), dst.max())) + 1
    return from_arrays(num_vertices, src, dst, weights, dedup)


class GraphBuilder:
    """Incremental edge accumulator producing a CSR :class:`Graph`.

    Example::

        b = GraphBuilder(num_vertices=4)
        b.add_edge(0, 1, 2.5)
        b.add_edge(1, 2, 1.0)
        g = b.build()
    """

    def __init__(self, num_vertices: int, weighted: bool = True) -> None:
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self.num_vertices = num_vertices
        self.weighted = weighted
        self._src: list = []
        self._dst: list = []
        self._weights: list = []

    def add_edge(self, u: int, v: int, w: float = 1.0) -> "GraphBuilder":
        if not (0 <= u < self.num_vertices and 0 <= v < self.num_vertices):
            raise ValueError(f"edge ({u}, {v}) out of range")
        self._src.append(u)
        self._dst.append(v)
        if self.weighted:
            self._weights.append(float(w))
        return self

    def add_edges(self, edges: Iterable[EdgeTuple]) -> "GraphBuilder":
        for e in edges:
            self.add_edge(*e)
        return self

    def __len__(self) -> int:
        return len(self._src)

    def build(self, dedup: bool = False) -> Graph:
        weights = self._weights if self.weighted else None
        return from_arrays(self.num_vertices, self._src, self._dst, weights, dedup)
