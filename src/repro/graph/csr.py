"""Compressed-sparse-row (CSR) directed weighted graph.

The CSR layout is the common denominator of the systems the paper builds on
(Subway, GridGraph after loading a block, Ligra): a vertex ``u``'s out-edges
occupy the contiguous slice ``dst[offsets[u]:offsets[u + 1]]`` with parallel
weights ``weights[...]``.

The structure is immutable after construction; transforms produce new graphs.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple, Union

import numpy as np


class Graph:
    """An immutable directed weighted graph in CSR form.

    Parameters
    ----------
    offsets:
        ``int64`` array of length ``num_vertices + 1``; out-edges of vertex
        ``u`` are ``dst[offsets[u]:offsets[u + 1]]``.
    dst:
        ``int32``/``int64`` array of destination vertex ids, length
        ``num_edges``.
    weights:
        ``float64`` array of edge weights parallel to ``dst``. May be ``None``
        for unweighted graphs, in which case every weight reads as ``1.0``.
    """

    __slots__ = ("offsets", "dst", "weights", "_reverse", "_fingerprint",
                 "__weakref__")

    def __init__(
        self,
        offsets: np.ndarray,
        dst: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        offsets = np.asarray(offsets, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if offsets.ndim != 1 or dst.ndim != 1:
            raise ValueError("offsets and dst must be one-dimensional")
        if offsets.size == 0:
            raise ValueError("offsets must have at least one entry")
        if offsets[0] != 0 or offsets[-1] != dst.size:
            raise ValueError("offsets must start at 0 and end at num_edges")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        if dst.size and (dst.min() < 0 or dst.max() >= offsets.size - 1):
            raise ValueError("dst contains out-of-range vertex ids")
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != dst.shape:
                raise ValueError("weights must parallel dst")
        self.offsets = offsets
        self.dst = dst
        self.weights = weights
        self._reverse: Optional["Graph"] = None
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.offsets.size - 1

    @property
    def num_edges(self) -> int:
        return self.dst.size

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    def out_degree(self, u: Optional[int] = None) -> Union[int, np.ndarray]:
        """Out-degree of ``u``, or the full out-degree array if ``u is None``."""
        if u is None:
            return np.diff(self.offsets)
        return int(self.offsets[u + 1] - self.offsets[u])

    def in_degree(self, u: Optional[int] = None) -> Union[int, np.ndarray]:
        """In-degree of ``u`` (computes the reverse graph on first use)."""
        return self.reverse().out_degree(u)

    def edge_weights(self) -> np.ndarray:
        """Weight array, materializing unit weights for unweighted graphs."""
        if self.weights is not None:
            return self.weights
        return np.ones(self.num_edges, dtype=np.float64)

    # ------------------------------------------------------------------
    # Edge access
    # ------------------------------------------------------------------
    def out_edges(self, u: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbors, weights)`` of vertex ``u``."""
        lo, hi = self.offsets[u], self.offsets[u + 1]
        return self.dst[lo:hi], self.edge_weights()[lo:hi]

    def out_neighbors(self, u: int) -> np.ndarray:
        lo, hi = self.offsets[u], self.offsets[u + 1]
        return self.dst[lo:hi]

    def edge_sources(self) -> np.ndarray:
        """Per-edge source vertex ids (the CSR row index, expanded)."""
        return np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(self.offsets)
        )

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(u, v, w)`` for every edge. Slow; for tests and tiny graphs."""
        weights = self.edge_weights()
        for u in range(self.num_vertices):
            for i in range(self.offsets[u], self.offsets[u + 1]):
                yield u, int(self.dst[i]), float(weights[i])

    def has_edge(self, u: int, v: int) -> bool:
        lo, hi = self.offsets[u], self.offsets[u + 1]
        return bool(np.any(self.dst[lo:hi] == v))

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "Graph":
        """The transpose graph G^T (cached)."""
        if self._reverse is None:
            from repro.graph.transform import reverse as _reverse

            self._reverse = _reverse(self)
            self._reverse._reverse = self
        return self._reverse

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content digest of the CSR arrays (cached).

        Two graphs with identical topology and weights share a fingerprint
        regardless of how they were constructed; any edge churn changes it.
        Used to version-stamp epochs and journal events so runs on drifted
        graphs are never compared as like-for-like.
        """
        if self._fingerprint is None:
            import hashlib

            h = hashlib.blake2b(digest_size=16)
            h.update(np.ascontiguousarray(self.offsets).tobytes())
            h.update(np.ascontiguousarray(self.dst).tobytes())
            h.update(np.ascontiguousarray(self.edge_weights()).tobytes())
            # Benign write race: the arrays are immutable here, so every
            # contender derives the identical digest and last-write-wins
            # is correct — a lock on a value object would be overkill.
            self._fingerprint = h.hexdigest()  # repro: noqa RC101 — idempotent
        return self._fingerprint

    # ------------------------------------------------------------------
    # Size accounting (used by the system cost models)
    # ------------------------------------------------------------------
    def size_bytes(self, weighted: Optional[bool] = None) -> int:
        """In-memory size in bytes under the paper's CSR accounting.

        Uses 4 bytes per destination id, 4 bytes per weight (when the graph
        is weighted), and 8 bytes per offset entry — the layout Subway and
        GridGraph use on device/disk.
        """
        if weighted is None:
            weighted = self.is_weighted
        per_edge = 8 if weighted else 4
        return int(self.num_edges * per_edge + self.offsets.size * 8)

    def __repr__(self) -> str:
        kind = "weighted" if self.is_weighted else "unweighted"
        return (
            f"Graph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges}, {kind})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if not np.array_equal(self.offsets, other.offsets):
            return False
        if not np.array_equal(self.dst, other.dst):
            return False
        return np.array_equal(self.edge_weights(), other.edge_weights())

    def __hash__(self) -> int:  # identity hash; graphs are mutable-free
        return id(self)
