"""Graph transforms: transpose, symmetrization, edge subgraphs."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import Graph


def reverse_edge_permutation(g: Graph) -> np.ndarray:
    """Map from transpose-edge index to original-edge index.

    ``reverse(g)`` stores the edge ``u -> v`` of ``g`` at transpose position
    ``j``; this function returns the array ``perm`` with ``perm[j]`` equal to
    the edge's index in ``g``'s CSR arrays. Algorithm 1 uses it to translate
    solution-path edges found by backward queries into forward edge ids.
    """
    return np.lexsort((g.edge_sources(), g.dst))


def reverse(g: Graph) -> Graph:
    """The transpose graph ``G^T`` (every edge ``u -> v`` becomes ``v -> u``)."""
    src = g.edge_sources()
    order = reverse_edge_permutation(g)
    rdst = src[order]
    rweights = None if g.weights is None else g.weights[order]
    counts = np.bincount(g.dst, minlength=g.num_vertices)
    offsets = np.zeros(g.num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return Graph(offsets, rdst, rweights)


def symmetrize(g: Graph) -> Graph:
    """The undirected view: union of ``G`` and ``G^T`` (parallel edges kept).

    Used by WCC, which propagates component labels in both directions.
    """
    src = g.edge_sources()
    all_src = np.concatenate([src, g.dst])
    all_dst = np.concatenate([g.dst, src])
    weights = None
    if g.weights is not None:
        weights = np.concatenate([g.weights, g.weights])
    order = np.lexsort((all_dst, all_src))
    all_src, all_dst = all_src[order], all_dst[order]
    if weights is not None:
        weights = weights[order]
    counts = np.bincount(all_src, minlength=g.num_vertices)
    offsets = np.zeros(g.num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return Graph(offsets, all_dst, weights)


def edge_subgraph(g: Graph, keep: np.ndarray) -> Graph:
    """Subgraph over the same vertex set keeping edges where ``keep`` is True.

    ``keep`` is a boolean mask parallel to the CSR edge arrays. This is the
    operation that materializes a Core Graph: all vertices, a subset of edges.
    """
    keep = np.asarray(keep, dtype=bool)
    if keep.shape != g.dst.shape:
        raise ValueError("keep mask must parallel the edge array")
    src = g.edge_sources()[keep]
    dst = g.dst[keep]
    weights = None if g.weights is None else g.weights[keep]
    counts = np.bincount(src, minlength=g.num_vertices)
    offsets = np.zeros(g.num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return Graph(offsets, dst, weights)


def vertex_induced_subgraph(g: Graph, keep_vertices: np.ndarray) -> Graph:
    """Subgraph keeping the same vertex ids but only edges whose endpoints
    both satisfy ``keep_vertices`` (a boolean mask of length n).

    Vertex ids are preserved — excluded vertices simply become isolated —
    which is the convention every proxy graph in this package follows
    (point-to-point pruning uses this to stay comparable with full-graph
    query results).
    """
    keep_vertices = np.asarray(keep_vertices, dtype=bool)
    if keep_vertices.shape != (g.num_vertices,):
        raise ValueError("keep_vertices must be a length-n boolean mask")
    src = g.edge_sources()
    keep_edge = keep_vertices[src] & keep_vertices[g.dst]
    return edge_subgraph(g, keep_edge)


def drop_weights(g: Graph) -> Graph:
    """Unweighted copy of ``g`` (shares index arrays)."""
    return Graph(g.offsets, g.dst, None)


def with_weights(g: Graph, weights: Optional[np.ndarray]) -> Graph:
    """Copy of ``g`` with a replacement weight array (shares index arrays)."""
    return Graph(g.offsets, g.dst, weights)
