"""Edge-weight generation.

The paper uses "the default weight generation tool from Ligra ... to generate
weights ranging from 1 to log(n) + 1" (§3). We reproduce that scheme plus a
uniform-float generator used for the R-MAT graphs (Table 13: "randomly
generated edge weights with uniform distribution between 0 and 1").
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.graph.csr import Graph
from repro.graph.transform import with_weights


def ligra_weights(
    g: Graph, seed: Optional[int] = None, rng: Optional[np.random.Generator] = None
) -> Graph:
    """Attach Ligra-style integer weights: uniform in ``[1, log2(n) + 1]``."""
    rng = rng or np.random.default_rng(seed)
    hi = max(1, int(math.log2(max(2, g.num_vertices)))) + 1
    weights = rng.integers(1, hi + 1, size=g.num_edges).astype(np.float64)
    return with_weights(g, weights)


def uniform_weights(
    g: Graph,
    low: float = 0.0,
    high: float = 1.0,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Graph:
    """Attach uniform float weights in ``(low, high]``.

    The lower bound is open so multiplicative queries (Viterbi) never see a
    zero weight.
    """
    if high <= low:
        raise ValueError("high must exceed low")
    rng = rng or np.random.default_rng(seed)
    w = rng.uniform(low, high, size=g.num_edges)
    # Nudge exact zeros to the smallest positive step to keep Viterbi defined.
    eps = (high - low) * 1e-9
    w = np.where(w <= low, low + eps, w)
    return with_weights(g, w.astype(np.float64))
