"""Vertex-range partitioners for out-of-core layouts.

GridGraph and friends partition vertices into ``P`` contiguous ranges.
Two balancing policies are provided: ``vertex`` (equal vertex counts — the
simple default) and ``edge`` (ranges chosen so each holds roughly the same
number of out-edges, which balances streaming work on skewed graphs; the
real GridGraph's partitioner also targets edge balance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import Graph


@dataclass
class Partitioning:
    """Contiguous vertex ranges: partition i covers
    ``[bounds[i], bounds[i+1])``."""

    bounds: np.ndarray  # length p + 1
    part_of: np.ndarray  # length n

    @property
    def num_partitions(self) -> int:
        return self.bounds.size - 1

    def size(self, i: int) -> int:
        return int(self.bounds[i + 1] - self.bounds[i])

    def edge_load(self, g: Graph) -> np.ndarray:
        """Out-edges per partition."""
        deg = g.out_degree()
        return np.array([
            int(deg[self.bounds[i]:self.bounds[i + 1]].sum())
            for i in range(self.num_partitions)
        ])


def _finalize(n: int, bounds: np.ndarray) -> Partitioning:
    part_of = np.searchsorted(bounds, np.arange(n), side="right") - 1
    return Partitioning(bounds=bounds, part_of=part_of)


def partition_vertices(
    g: Graph, p: int, policy: str = "vertex"
) -> Partitioning:
    """Split ``g``'s vertices into ``p`` contiguous ranges.

    ``policy="vertex"`` balances vertex counts; ``policy="edge"`` balances
    out-edge counts (cuts placed at equal fractions of the cumulative
    degree distribution).
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    n = g.num_vertices
    if policy == "vertex":
        bounds = np.linspace(0, n, p + 1).astype(np.int64)
        return _finalize(n, bounds)
    if policy == "edge":
        # offsets IS the cumulative out-degree; find equal-load cut points.
        total = g.num_edges
        targets = np.linspace(0, total, p + 1)
        bounds = np.searchsorted(g.offsets, targets, side="left")
        bounds[0] = 0
        bounds[-1] = n
        # enforce monotonicity when many empty ranges collapse
        bounds = np.maximum.accumulate(bounds).astype(np.int64)
        return _finalize(n, bounds)
    raise ValueError(f"unknown policy {policy!r}")


def imbalance(loads: np.ndarray) -> float:
    """Max/mean load ratio; 1.0 is perfectly balanced."""
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0 or loads.mean() == 0:
        return 1.0
    return float(loads.max() / loads.mean())
