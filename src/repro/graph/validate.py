"""Structural validation of CSR graphs.

Used by the binary I/O layer on load and available to users ingesting
external data. Checks are redundant with the :class:`Graph` constructor's
but cover properties the constructor cannot afford to verify on every
transform (sortedness, weight sanity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.graph.csr import Graph


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_graph`."""

    ok: bool = True
    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    def error(self, msg: str) -> None:
        self.ok = False
        self.errors.append(msg)

    def warn(self, msg: str) -> None:
        self.warnings.append(msg)


def validate_graph(
    g: Graph,
    require_positive_weights: bool = False,
    allow_self_loops: bool = True,
    allow_parallel_edges: bool = True,
) -> ValidationReport:
    """Check structural invariants; returns a report, raises nothing."""
    report = ValidationReport()
    n, m = g.num_vertices, g.num_edges
    if g.offsets.size != n + 1:
        report.error(f"offsets size {g.offsets.size} != n + 1 = {n + 1}")
    if g.offsets[0] != 0 or g.offsets[-1] != m:
        report.error("offsets must span [0, num_edges]")
    if np.any(np.diff(g.offsets) < 0):
        report.error("offsets not monotone")
    if m:
        if g.dst.min() < 0 or g.dst.max() >= n:
            report.error("dst ids out of range")
        src = g.edge_sources()
        if not allow_self_loops and np.any(src == g.dst):
            report.error("self-loops present")
        if not allow_parallel_edges:
            pairs = src * n + g.dst
            if np.unique(pairs).size != m:
                report.error("parallel edges present")
    if g.weights is not None and m:
        if np.any(~np.isfinite(g.weights)):
            report.error("non-finite weights")
        elif require_positive_weights and np.any(g.weights <= 0):
            report.error("non-positive weights")
        elif np.any(g.weights < 0):
            report.warn("negative weights: MIN-style queries may diverge")
    isolated = int(np.count_nonzero(
        (g.out_degree() == 0) & (g.in_degree() == 0)
    ))
    if isolated:
        report.warn(f"{isolated} isolated vertices")
    return report
