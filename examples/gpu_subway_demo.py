#!/usr/bin/env python
"""GPU out-of-memory processing: Subway's GEN/TRANS/COMP with a core graph.

Subway regenerates and re-transfers the active subgraph every iteration
because the full graph does not fit in GPU memory. The core phase instead
ships the small CG once and iterates on-device. This demo prints the cost
ledger the paper plots in Figure 5.

Run: ``python examples/gpu_subway_demo.py``
"""

import numpy as np

from repro import SSNP, build_core_graph
from repro.datasets.zoo import load_zoo_graph
from repro.systems.subway import SubwaySimulator


def show(label, report) -> None:
    c, b = report.counters, report.breakdown
    print(f"   {label}:")
    print(f"     subgraph edges generated : {int(c['gen_edges']):,}")
    print(f"     bytes over PCIe          : {int(c['trans_bytes']):,}")
    print(f"     edges computed on GPU    : {int(c['comp_edges']):,}")
    print(f"     atomic updates           : {int(c['atomics']):,}")
    print(f"     modeled time             : {report.time * 1e3:.3f} ms "
          f"(gen {b['gen'] * 1e3:.3f} / trans {b['trans'] * 1e3:.3f} / "
          f"comp {b['comp'] * 1e3:.3f})")


def main() -> None:
    print("== load the TTW stand-in and build its SSNP core graph ==")
    g = load_zoo_graph("TTW")
    cg = build_core_graph(g, SSNP, num_hubs=20)
    print(f"   {g}\n   {cg}")

    sim = SubwaySimulator(g)
    source = int(np.flatnonzero(g.out_degree() > 0)[123])

    print(f"\n== SSNP({source}) on baseline Subway ==")
    base = sim.baseline_run(SSNP, source)
    show("baseline", base)

    print("\n== SSNP with CG-bootstrapped 2Phase ==")
    two = sim.two_phase_run(cg, SSNP, source)
    show("2Phase", two)

    assert np.array_equal(base.values, two.values)
    print("\n   normalized (2Phase / baseline), as in the paper's Fig. 5:")
    for key, label in (
        ("gen_edges", "GEN"), ("trans_bytes", "TRANS"),
        ("comp_edges", "COMP"), ("atomics", "ATOMIC"),
    ):
        ratio = two.counters[key] / base.counters[key]
        print(f"     {label:6s} {ratio:.2f}")
    print(f"   speedup: {two.speedup_over(base):.2f}x")


if __name__ == "__main__":
    main()
