#!/usr/bin/env python
"""An adaptive query service: use the CG only where it helps.

The advisor calibrates the actual core-graph benefit per (graph, query
kind) and routes queries accordingly — the same code serves a power-law
social graph (CG on) and a road lattice (CG off, per the paper's
Limitations paragraph).

Run: ``python examples/adaptive_advisor.py``
"""

import numpy as np

from repro import SSSP, build_core_graph
from repro.core.advisor import CoreGraphAdvisor
from repro.generators.random_graphs import lattice_graph
from repro.generators.rmat import rmat
from repro.graph.weights import ligra_weights


def serve(name, g) -> None:
    print(f"== {name}: {g} ==")
    cg = build_core_graph(g, SSSP, num_hubs=20)
    print(f"   core graph: {100 * cg.edge_fraction:.1f}% of edges")
    advisor = CoreGraphAdvisor(g, cg, SSSP)
    rng = np.random.default_rng(7)
    calib = rng.choice(np.flatnonzero(g.out_degree() > 0), 3, replace=False)
    cal = advisor.calibrate([int(s) for s in calib])
    print(f"   calibration: {cal.expected_speedup:.2f}x expected work "
          f"ratio, {cal.avg_precision_pct:.1f}% core-phase precision")
    print(f"   -> {advisor!r}")
    out = advisor.answer(int(calib[0]))
    kind = "2Phase via CG" if hasattr(out, "phase1") else "direct evaluation"
    print(f"   a query was served by: {kind}\n")


def main() -> None:
    social = ligra_weights(rmat(12, 12, seed=41), seed=42)
    roads = lattice_graph(56, 56, seed=43)
    serve("social network (power-law)", social)
    serve("road network (lattice)", roads)


if __name__ == "__main__":
    main()
