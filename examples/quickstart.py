#!/usr/bin/env python
"""Quickstart: build a Core Graph once, answer many queries fast.

Walks the paper's pipeline end to end on a small power-law graph:

1. generate a weighted R-MAT graph;
2. identify its SSSP core graph from the 20 highest-degree vertices
   (Algorithm 1);
3. evaluate a query with the 2Phase algorithm (Algorithm 3) and check it is
   exactly the full-graph result;
4. report the CG size, its precision, and the work saved.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import SSSP, build_core_graph, evaluate_query, two_phase
from repro.engines.stats import RunStats
from repro.generators.rmat import rmat
from repro.graph.weights import ligra_weights


def main() -> None:
    print("== 1. generate a power-law graph ==")
    g = ligra_weights(rmat(scale=12, edge_factor=12, seed=7), seed=8)
    print(f"   {g}")

    print("\n== 2. identify the SSSP core graph (one-time cost) ==")
    cg = build_core_graph(g, SSSP, num_hubs=20)
    print(f"   {cg}")
    print(f"   kept {100 * cg.edge_fraction:.1f}% of edges, "
          f"{cg.connectivity_edges} added for connectivity")

    print("\n== 3. evaluate a query with 2Phase ==")
    source = int(cg.hubs[-1]) + 1  # an arbitrary non-hub vertex
    result = two_phase(g, cg, SSSP, source)
    truth = evaluate_query(g, SSSP, source)
    assert np.array_equal(result.values, truth), "2Phase must be exact"
    print(f"   source {source}: values for all {g.num_vertices} vertices, "
          "exactly matching direct evaluation")

    print("\n== 4. work saved ==")
    baseline = RunStats()
    evaluate_query(g, SSSP, source, stats=baseline)
    total = result.total
    print(f"   direct evaluation: {baseline.edges_processed:>9,} edge visits")
    print(f"   2Phase core phase: {result.phase1.edges_processed:>9,}")
    print(f"   2Phase completion: {result.phase2.edges_processed:>9,}")
    saving = 100 * (1 - total.edges_processed / baseline.edges_processed)
    print(f"   reduction: {saving:.1f}% "
          f"({result.impacted} vertices bootstrapped by the core phase)")


if __name__ == "__main__":
    main()
