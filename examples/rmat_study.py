#!/usr/bin/env python
"""R-MAT connectivity study: how graph structure shapes the core graph.

The paper's Table 13: RMAT2 (denser, locally connected) yields the smallest
CGs, RMAT3 (more long-range connections) the largest, and precision stays
above 91% on all of them. This demo regenerates that comparison and also
varies the number of hubs to show the Fig. 3 saturation effect.

Run: ``python examples/rmat_study.py``
"""

from repro import SSSP, SSWP, build_core_graph
from repro.core.precision import measure_precision
from repro.datasets.zoo import RMAT_NAMES, load_zoo_graph, zoo_entry
from repro.harness.tables import render_table


def main() -> None:
    rows = []
    for name in RMAT_NAMES:
        g = load_zoo_graph(name)
        entry = zoo_entry(name)
        row = [name, str(entry.params)]
        for spec in (SSSP, SSWP):
            cg = build_core_graph(g, spec, num_hubs=20)
            rep = measure_precision(g, cg, spec, sources=[1, 2, 3, 4, 5])
            row += [100 * cg.edge_fraction, rep.pct_precise]
        rows.append(row)
    print(render_table(
        ["G", "(a,b,c,d)", "SSSP CG %", "SSSP prec %",
         "SSWP CG %", "SSWP prec %"],
        rows,
        title="Core graphs across R-MAT connectivity regimes (Table 13)",
    ))

    print("\nHub-count saturation on RMAT1 (the Fig. 3 effect):")
    g = load_zoo_graph("RMAT1")
    cg = build_core_graph(g, SSSP, num_hubs=32, track_growth=True,
                          connectivity=False)
    for q in (1, 2, 4, 8, 16, 32):
        print(f"   {q:3d} hub queries -> {int(cg.growth[q - 1]):>7,} "
              "centrality edges")


if __name__ == "__main__":
    main()
