#!/usr/bin/env python
"""Social-network analytics: amortizing one core graph over many queries.

The paper's motivation: a graph with millions of vertices has millions of
possible vertex-specific queries (reach of every user, shortest paths from
every user...), so a proxy graph identified *once* pays for itself across
all of them. This example mimics that workload on a Friendster-like
stand-in:

* REACH from many "influencer" accounts (who can each influencer reach?)
  via the general core graph (Algorithm 2);
* SSSP from many ordinary accounts (degrees of separation) via the
  specialized core graph (Algorithm 1);

and reports per-query work with and without the core graphs.

Run: ``python examples/social_network_queries.py``
"""

import numpy as np

from repro import REACH, SSSP, build_core_graph, build_unweighted_core_graph
from repro.core.twophase import two_phase
from repro.datasets.zoo import load_zoo_graph
from repro.engines.frontier import evaluate_query
from repro.engines.stats import RunStats
from repro.graph.degree import top_degree_vertices

NUM_QUERIES = 8


def run_workload(g, cg, spec, sources) -> None:
    direct_edges, twophase_edges, precise = 0, 0, 0
    for s in sources:
        baseline = RunStats()
        truth = evaluate_query(g, spec, s, stats=baseline)
        res = two_phase(g, cg, spec, s)
        assert np.array_equal(res.values, truth)
        direct_edges += baseline.edges_processed
        twophase_edges += res.total.edges_processed
        cg_vals = evaluate_query(cg.graph, spec, s)
        precise += int(spec.values_equal(cg_vals, truth).sum())
    n = g.num_vertices * len(sources)
    print(f"   {spec.name}: {len(sources)} queries")
    print(f"     core phase alone already precise for "
          f"{100 * precise / n:.2f}% of vertex results")
    print(f"     edge visits: {direct_edges:,} direct -> "
          f"{twophase_edges:,} with CG "
          f"({100 * (1 - twophase_edges / direct_edges):.1f}% saved)")


def main() -> None:
    print("== load the Friendster stand-in ==")
    g = load_zoo_graph("FR")
    print(f"   {g}")
    rng = np.random.default_rng(99)

    print("\n== influencer reach (REACH on the general core graph) ==")
    gcg = build_unweighted_core_graph(g, num_hubs=20)
    print(f"   {gcg}")
    influencers = top_degree_vertices(g, 50)[-NUM_QUERIES:]
    run_workload(g, gcg, REACH, [int(v) for v in influencers])

    print("\n== degrees of separation (SSSP on the specialized CG) ==")
    cg = build_core_graph(g, SSSP, num_hubs=20)
    print(f"   {cg}")
    candidates = np.flatnonzero(g.out_degree() > 0)
    users = rng.choice(candidates, NUM_QUERIES, replace=False)
    run_workload(g, cg, SSSP, [int(v) for v in users])


if __name__ == "__main__":
    main()
