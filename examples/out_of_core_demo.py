#!/usr/bin/env python
"""Out-of-core processing: how a core graph cuts GridGraph's disk I/O.

GridGraph streams a 4x4 grid of edge blocks from disk every iteration; the
paper's Table 9 shows the in-memory core phase absorbs up to 97% of those
I/O iterations. This demo runs the GridGraph cost model with and without a
core graph and prints the I/O ledger.

Run: ``python examples/out_of_core_demo.py``
"""

from repro import SSWP, build_core_graph
from repro.datasets.zoo import load_zoo_graph
from repro.systems.gridgraph import GridGraphSimulator


def show(label, report) -> None:
    c = report.counters
    print(f"   {label}:")
    print(f"     iterations touching disk : {int(c['io_iterations'])}")
    print(f"     blocks fetched           : {int(c['io_blocks'])}")
    print(f"     bytes read               : {int(c['io_bytes']):,}")
    print(f"     edges processed          : {int(c['edges_processed']):,}")
    print(f"     modeled time             : {report.time * 1e3:.2f} ms "
          f"(io {report.breakdown['io'] * 1e3:.2f} + "
          f"comp {report.breakdown['comp'] * 1e3:.2f})")


def main() -> None:
    print("== load the Twitter stand-in and build its SSWP core graph ==")
    g = load_zoo_graph("TT")
    cg = build_core_graph(g, SSWP, num_hubs=20)
    print(f"   {g}\n   {cg}")

    sim = GridGraphSimulator(g, p=4)
    source = int(cg.hubs[0]) + 1

    print(f"\n== SSWP({source}) on baseline GridGraph (4x4 grid) ==")
    base = sim.baseline_run(SSWP, source)
    show("baseline", base)

    print("\n== SSWP with the CG-bootstrapped 2Phase ==")
    two = sim.two_phase_run(cg, SSWP, source)
    show("2Phase", two)

    import numpy as np

    assert np.array_equal(base.values, two.values)
    reduction = 100 * (
        1 - two.counters["io_iterations"] / base.counters["io_iterations"]
    )
    print(f"\n   I/O iterations reduced by {reduction:.1f}% "
          f"(paper's Table 9 reports ~94-97% for SSWP), "
          f"speedup {two.speedup_over(base):.2f}x")


if __name__ == "__main__":
    main()
