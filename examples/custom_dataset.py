#!/usr/bin/env python
"""End-to-end on user data: edge list -> validate -> characterize ->
compress -> core graphs -> cached query service.

This example writes itself a small SNAP-style edge list, then treats it as
foreign data: structural validation, summary statistics (including the
degree-Gini power-law check), compressed on-disk storage, a persisted
CoreGraphIndex, and a memoized query store on top.

Run: ``python examples/custom_dataset.py``
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import estimate_effective_diameter, graph_summary
from repro.core import CoreGraphIndex, QueryResultStore
from repro.generators.rmat import rmat
from repro.graph import read_edge_list, validate_graph, write_edge_list
from repro.graph.weights import ligra_weights
from repro.io import load_compressed, save_compressed


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        # Pretend this file arrived from elsewhere.
        source_graph = ligra_weights(rmat(11, 10, seed=171), seed=172)
        edge_file = tmp / "dataset.txt"
        write_edge_list(source_graph, edge_file)
        print(f"== ingest {edge_file.name} ==")

        g = read_edge_list(edge_file)
        report = validate_graph(g, require_positive_weights=True)
        print(f"   valid: {report.ok}  warnings: {report.warnings}")

        summary = graph_summary(g)
        diameter = estimate_effective_diameter(g, samples=5, seed=3)
        print(f"   |V|={summary.num_vertices:,} |E|={summary.num_edges:,} "
              f"gini={summary.degree_gini:.2f} "
              f"eff.diam~{diameter.effective_90:.0f}")
        if summary.degree_gini > 0.4:
            print("   degree skew says: core graphs should work well here")

        comp = save_compressed(g, tmp / "dataset.cg")
        print(f"\n== compressed storage ==\n   raw {comp.raw_bytes:,} B -> "
              f"{comp.compressed_bytes:,} B ({comp.ratio:.2f}x)")
        assert sorted(load_compressed(tmp / "dataset.cg").iter_edges()) == \
            sorted(g.iter_edges())

        print("\n== build + persist core graphs ==")
        index = CoreGraphIndex(g, num_hubs=20).build_all()
        index.save(tmp / "cgs")
        for name, cg in sorted(index.built.items()):
            print(f"   {name:8s} {100 * cg.edge_fraction:5.1f}% of edges")

        print("\n== serve queries through the memoized store ==")
        store = QueryResultStore(index, capacity=64)
        rng = np.random.default_rng(4)
        sources = rng.choice(
            np.flatnonzero(g.out_degree() > 0), 6, replace=False
        )
        for s in list(sources) + list(sources[:3]):  # repeats -> cache hits
            store.query("SSSP", int(s))
        print(f"   {store!r}")
        assert store.stats.hits == 3


if __name__ == "__main__":
    main()
