#!/usr/bin/env python
"""Operating a query service: one CoreGraphIndex answering everything.

The paper's deployment story — identify core graphs once, answer all
future queries — as a single object: build the five CGs (four specialized
plus the general one), persist them, reload, and serve a mixed query
stream with exactness checks.

Run: ``python examples/query_index.py``
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.index import CoreGraphIndex
from repro.datasets.zoo import load_zoo_graph
from repro.engines.frontier import evaluate_query
from repro.queries.registry import get_spec


def main() -> None:
    g = load_zoo_graph("TTW")
    print(f"graph: {g}\n")

    print("== build every core graph once ==")
    t0 = time.perf_counter()
    index = CoreGraphIndex(g, num_hubs=20).build_all()
    print(f"   {index}")
    print(f"   built in {time.perf_counter() - t0:.2f}s")
    for name, cg in sorted(index.built.items()):
        print(f"   {name:8s} {cg.num_edges:>7,} edges "
              f"({100 * cg.edge_fraction:.1f}%)")

    with tempfile.TemporaryDirectory() as tmp:
        directory = index.save(Path(tmp) / "cgs")
        print(f"\n== persisted to {directory.name}/ and reloaded ==")
        served = CoreGraphIndex.load(g, directory, num_hubs=20)

        print("\n== serve a mixed query stream ==")
        rng = np.random.default_rng(63)
        sources = rng.choice(
            np.flatnonzero(g.out_degree() > 0), 12, replace=False
        )
        stream = [
            ("SSSP", int(sources[0])), ("REACH", int(sources[1])),
            ("SSWP", int(sources[2])), ("WCC", None),
            ("Viterbi", int(sources[3])), ("SSNP", int(sources[4])),
        ]
        for spec_name, source in stream:
            t0 = time.perf_counter()
            res = served.answer(spec_name, source)
            elapsed = (time.perf_counter() - t0) * 1e3
            truth = evaluate_query(g, get_spec(spec_name), source)
            exact = np.array_equal(res.values, truth)
            src = "-" if source is None else source
            print(f"   {spec_name:8s} source={src!s:>6} {elapsed:7.1f} ms  "
                  f"exact={exact} certified={res.certified_precise}")


if __name__ == "__main__":
    main()
