#!/usr/bin/env python
"""Scale study: why stand-in CG fractions exceed the paper's.

EXPERIMENTS.md claims the systematic ~2x offset in CG edge fractions is a
finite-size effect: a BFS/shortest-path backbone is proportionally larger
on a small graph (the paper's own smallest input, PK, already shows the
inflation). This study generates the same R-MAT family at several scales
and shows the SSSP CG fraction falling as the graph grows — extrapolating
toward the paper's single-digit percentages at billion-edge scale.

Run: ``python examples/scaling_study.py``
"""

import time

from repro import SSSP, build_core_graph
from repro.core.precision import measure_precision
from repro.generators.rmat import rmat
from repro.graph.weights import ligra_weights
from repro.harness.tables import render_table


def main() -> None:
    rows = []
    for scale in (10, 11, 12, 13, 14, 15):
        g = ligra_weights(rmat(scale, 16, seed=1101), seed=1108)
        t0 = time.perf_counter()
        cg = build_core_graph(g, SSSP, num_hubs=20)
        build_s = time.perf_counter() - t0
        rep = measure_precision(g, cg, SSSP, sources=[1, 2, 3])
        rows.append([
            f"2^{scale}", g.num_vertices, g.num_edges,
            100 * cg.edge_fraction, rep.pct_precise, build_s,
        ])
    print(render_table(
        ["scale", "|V|", "|E|", "SSSP CG % edges", "precision %", "build s"],
        rows,
        title="SSSP core-graph fraction vs graph scale (Graph500 R-MAT, "
        "20 hubs)",
    ))
    fractions = [row[3] for row in rows]
    print(
        f"\nCG fraction falls {fractions[0]:.1f}% -> {fractions[-1]:.1f}% "
        "as the graph grows 32x;\nthe paper's 5-10% at 2.6 B edges is the "
        "continuation of this curve."
    )


if __name__ == "__main__":
    main()
