#!/usr/bin/env python
"""Distributed BSP: core graphs as a network-traffic optimization.

The paper's intro motivates the problem with distributed frameworks
(Pregel, PowerGraph); the technique itself is system-agnostic. This demo
runs a Pregel-style synchronous model with 8 hash-partitioned workers and
shows the CG bootstrap cutting cross-worker messages and supersteps.

Run: ``python examples/distributed_bsp.py``
"""

import numpy as np

from repro import REACH, SSSP, build_core_graph, build_unweighted_core_graph
from repro.datasets.zoo import load_zoo_graph
from repro.systems.pregel import PregelSimulator


def show(label, rep) -> None:
    c = rep.counters
    print(f"   {label}:")
    print(f"     supersteps          : {int(c['supersteps'])}")
    print(f"     messages (total)    : {int(c['messages']):,}")
    print(f"     cross-worker msgs   : {int(c['network_messages']):,}")
    print(f"     modeled time        : {rep.time * 1e3:.2f} ms "
          f"(network {rep.breakdown['network'] * 1e3:.2f})")


def main() -> None:
    g = load_zoo_graph("TT")
    sim = PregelSimulator(g, workers=8)
    print(f"graph: {g}, 8 workers, hash placement\n")

    for spec, cg in (
        (SSSP, build_core_graph(g, SSSP, num_hubs=20)),
        (REACH, build_unweighted_core_graph(g, num_hubs=20)),
    ):
        source = int(np.flatnonzero(g.out_degree() > 0)[77])
        print(f"== {spec.name}({source}) ==")
        base = sim.baseline_run(spec, source)
        show("baseline BSP", base)
        two = sim.two_phase_run(cg, spec, source)
        show("CG 2Phase (coordinator core phase + broadcast)", two)
        assert np.array_equal(base.values, two.values)
        saved = 1 - two.counters["network_messages"] / base.counters[
            "network_messages"
        ]
        print(f"   network traffic reduced {100 * saved:.1f}%, "
              f"speedup {two.speedup_over(base):.2f}x\n")


if __name__ == "__main__":
    main()
