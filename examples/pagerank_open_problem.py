#!/usr/bin/env python
"""The paper's open problem: core graphs and non-monotonic PageRank.

§2.1 ends with: "Successful use of core graphs in context of non-monotonic
algorithms such as PageRank remains an open problem." This demo shows why:
the CG-converged rank vector is *not* on any useful side of the true ranks
(no lattice argument applies), so the 2Phase exactness guarantee is lost —
the best a CG can offer PageRank is a warm start that trims some full-graph
iterations.

Run: ``python examples/pagerank_open_problem.py``
"""

from repro import SSSP, build_core_graph
from repro.core.nonmonotonic import bootstrap_pagerank
from repro.datasets.zoo import load_zoo_graph


def main() -> None:
    g = load_zoo_graph("TT")
    cg = build_core_graph(g, SSSP, num_hubs=20)
    print(f"graph: {g}\ncore graph: {cg}\n")

    study = bootstrap_pagerank(g, cg, tol=1e-10)
    print("PageRank (damping 0.85, L1 tolerance 1e-10):")
    print(f"  cold start on G        : {study.cold.iterations} iterations")
    print(f"  phase 1 on CG          : {study.phase1.iterations} iterations")
    print(f"  warm start on G        : {study.warm.iterations} iterations "
          f"({study.iteration_reduction_pct:.0f}% fewer)")
    print(f"  CG-only ranks L1 error : {study.phase1_error_l1:.3e}  "
          "<- NOT the answer")
    print(f"  warm vs cold fixed pt  : {study.final_divergence_l1:.3e}  "
          "<- converges to the same ranks")
    print(
        "\nContrast with the monotonic queries: there the core-phase values "
        "are exact for\n>94% of vertices and the completion phase provably "
        "repairs the rest. For\nPageRank no such guarantee exists — the "
        "open problem stands."
    )


if __name__ == "__main__":
    main()
