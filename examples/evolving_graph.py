#!/usr/bin/env python
"""Core graphs on an evolving graph: exactness kept, quality maintained.

Streams batches of edge insertions and deletions into an
:class:`EvolvingCoreGraph`. Every answer stays exact (asserted); what
decays is the core phase's precision — and the maintenance policy rebuilds
the CG when a sampled probe crosses the threshold.

Run: ``python examples/evolving_graph.py``
"""

import numpy as np

from repro.core import EvolvingCoreGraph
from repro.engines.frontier import evaluate_query
from repro.generators.rmat import rmat
from repro.graph.mutate import random_edge_batch
from repro.graph.weights import ligra_weights
from repro.queries.specs import SSSP


def main() -> None:
    g = ligra_weights(rmat(11, 10, seed=181), seed=182)
    ev = EvolvingCoreGraph(
        g, SSSP, num_hubs=20, rebuild_below_precision=95.0
    )
    print(f"t=0  {ev!r}  probe={ev.probe_precision():.1f}%\n")

    rng = np.random.default_rng(9)
    for t in range(1, 6):
        inserts = random_edge_batch(ev.graph, 1500, seed=200 + t)
        ev.insert_edges(inserts)
        src = ev.graph.edge_sources()
        victims = rng.integers(0, ev.graph.num_edges, 300)
        ev.delete_edges(
            [(int(src[i]), int(ev.graph.dst[i])) for i in victims]
        )

        source = int(rng.choice(np.flatnonzero(ev.graph.out_degree() > 0)))
        res = ev.answer(source)
        truth = evaluate_query(ev.graph, SSSP, source)
        assert np.array_equal(res.values, truth), "exactness must survive"

        rebuilt = ev.maybe_rebuild()
        print(f"t={t}  probe={ev.stats.last_probe_precision:5.1f}%  "
              f"{'REBUILT' if rebuilt else 'kept   '}  {ev!r}")

    print("\nEvery answer above was verified exact against direct "
          "evaluation;\nthe maintenance policy only manages *speed*, "
          "never correctness.")


if __name__ == "__main__":
    main()
