#!/usr/bin/env python
"""The paper's Limitations section, made concrete: road-network graphs.

§2.1: "The above observations hold for irregular graphs with power-law
distribution. For other kinds of graphs, core graphs may have different
forms and different degree of precision." A 2D lattice (road-network-like)
has no hubs: every vertex has degree ≈ 4, so 20 "highest-degree" vertices
explain almost none of the shortest-path structure. This demo contrasts the
same recipe on a power-law graph and a lattice of similar size.

Run: ``python examples/limitations_road_network.py``
"""

import numpy as np

from repro import SSSP, build_core_graph
from repro.core.precision import measure_precision
from repro.generators.random_graphs import lattice_graph
from repro.generators.rmat import rmat
from repro.graph.weights import ligra_weights
from repro.harness.tables import render_table


def study(name, g, sources):
    cg = build_core_graph(g, SSSP, num_hubs=20)
    rep = measure_precision(g, cg, SSSP, sources)
    return [name, g.num_vertices, g.num_edges,
            100 * cg.edge_fraction, rep.pct_precise, rep.avg_error_pct]


def main() -> None:
    rng = np.random.default_rng(17)
    powerlaw = ligra_weights(rmat(12, 8, seed=21), seed=22)
    lattice = lattice_graph(64, 64, seed=23)

    rows = []
    for name, g in (("power-law (R-MAT)", powerlaw),
                    ("road lattice 64x64", lattice)):
        sources = rng.choice(
            np.flatnonzero(g.out_degree() > 0), 5, replace=False
        )
        rows.append(study(name, g, [int(s) for s in sources]))

    print(render_table(
        ["graph", "|V|", "|E|", "CG % edges", "precision %", "avg err %"],
        rows,
        title="SSSP core graphs: power-law vs road network (paper §2.1 "
        "Limitations)",
    ))
    print(
        "\nOn the lattice the 'high-degree hubs proxy high centrality' "
        "assumption fails:\nhub queries trace only a few corridors, so "
        "either precision drops or the CG\nkeeps most of the graph — the "
        "regime the paper explicitly scopes out."
    )


if __name__ == "__main__":
    main()
