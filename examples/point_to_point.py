#!/usr/bin/env python
"""Point-to-all vs point-to-point: the related-work contrast of §4.

Core graphs serve *point-to-all* queries and are identified once for all
future queries; PnP-style methods prune the graph *per (s, t) pair*. This
demo answers the same (s, t) distance three ways and shows where each
regime pays its costs.

Run: ``python examples/point_to_point.py``
"""

import time

import numpy as np

from repro import SSSP, build_core_graph, evaluate_query, two_phase
from repro.core.pointtopoint import bidirectional_sssp, pnp_point_to_point
from repro.datasets.zoo import load_zoo_graph


def main() -> None:
    g = load_zoo_graph("TTW")
    print(f"graph: {g}\n")
    rng = np.random.default_rng(31)
    pairs = [
        (int(s), int(t))
        for s, t in zip(
            rng.choice(np.flatnonzero(g.out_degree() > 0), 5, replace=False),
            rng.choice(g.num_vertices, 5, replace=False),
        )
    ]

    print("one-time core graph identification (amortized over all queries):")
    t0 = time.perf_counter()
    cg = build_core_graph(g, SSSP, num_hubs=20)
    print(f"   {cg} in {time.perf_counter() - t0:.2f}s\n")

    for s, t in pairs:
        truth = evaluate_query(g, SSSP, s)[t]

        t0 = time.perf_counter()
        res = two_phase(g, cg, SSSP, s)  # answers s -> EVERY vertex
        t_cg = time.perf_counter() - t0
        assert res.values[t] == truth or (
            np.isinf(res.values[t]) and np.isinf(truth)
        )

        t0 = time.perf_counter()
        d_bi = bidirectional_sssp(g, s, t)  # answers only s -> t
        t_bi = time.perf_counter() - t0

        t0 = time.perf_counter()
        d_pnp, pruned = pnp_point_to_point(g, SSSP, s, t)
        t_pnp = time.perf_counter() - t0

        d = "inf" if np.isinf(truth) else f"{truth:.0f}"
        print(f"({s:>5} -> {t:>5}) dist={d:>5}  "
              f"CG 2phase (all targets): {t_cg * 1e3:7.1f} ms | "
              f"bidirectional: {t_bi * 1e3:7.1f} ms | "
              f"PnP (pruned {pruned:,} edges): {t_pnp * 1e3:7.1f} ms")
        assert d_bi == truth or (np.isinf(d_bi) and np.isinf(truth))
        assert d_pnp == truth or (np.isinf(d_pnp) and np.isinf(truth))

    print(
        "\nPnP/bidirectional answer ONE pair per run and redo their pruning "
        "per query;\nthe core graph is built once and every 2Phase run "
        "answers a full point-to-all\nquery — the trade the paper's §4 "
        "describes."
    )


if __name__ == "__main__":
    main()
