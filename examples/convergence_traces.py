#!/usr/bin/env python
"""Why 2Phase wins: convergence traces, exported as CSV.

Plots-without-a-plotter: prints the per-iteration frontier/edge series of a
direct evaluation next to the 2Phase core/completion phases, and writes the
long-format CSV (``results/traces_<query>.csv``) ready for any plotting
tool. The visual story is the paper's: the core phase does the heavy
lifting on ~20% of edges, and the completion phase collapses to a couple of
near-empty sweeps.

Run: ``python examples/convergence_traces.py``
"""

from pathlib import Path

from repro import SSWP, build_core_graph, evaluate_query, two_phase
from repro.analysis.traces import (
    Trace,
    compare_convergence,
    two_phase_trace,
    write_traces_csv,
)
from repro.datasets.zoo import load_zoo_graph
from repro.engines.stats import RunStats


def sparkline(series, width=40) -> str:
    if not series:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    peak = max(series) or 1
    step = max(1, len(series) // width)
    cells = [
        blocks[min(8, round(8 * max(series[i:i + step]) / peak))]
        for i in range(0, len(series), step)
    ]
    return "".join(cells)


def main() -> None:
    g = load_zoo_graph("TT")
    cg = build_core_graph(g, SSWP, num_hubs=20)
    source = int(cg.hubs[0]) + 13
    print(f"graph: {g}\ncore graph: {cg}\nquery: SSWP({source})\n")

    baseline_stats = RunStats()
    evaluate_query(g, SSWP, source, stats=baseline_stats)
    baseline = Trace.from_stats("direct", baseline_stats)
    result = two_phase(g, cg, SSWP, source)
    core, completion = two_phase_trace(result)

    print("edges scanned per iteration (bar height ∝ edges):")
    for trace in (baseline, core, completion):
        print(f"   {trace.label:10s} |{sparkline(trace.edges_scanned)}| "
              f"{trace.iterations} iters, {trace.total_edges:,} edges")

    summary = compare_convergence(baseline, core, completion)
    print("\nsummary:")
    for key, val in summary.items():
        print(f"   {key:26s} {val:,.1f}" if isinstance(val, float)
              else f"   {key:26s} {val:,}")

    out = Path("results")
    out.mkdir(exist_ok=True)
    path = write_traces_csv(
        [baseline, core, completion], out / "traces_sswp.csv"
    )
    print(f"\nCSV written -> {path}")


if __name__ == "__main__":
    main()
