#!/usr/bin/env python
"""Theorem 1 in action: certifying precise vertices from hub distances.

After the core phase, a vertex whose CG value meets a hub-distance bound is
*provably* precise, so the completion phase can skip its incoming edges
(the paper's Table 12 shows this lifting Ligra's SSWP speedup from 3.82x to
7.30x on FR). This demo runs SSWP/SSNP with and without the optimization
and reports certificates issued and work saved.

Run: ``python examples/triangle_optimization.py``
"""

import numpy as np

from repro import SSNP, SSWP, build_core_graph, evaluate_query, two_phase
from repro.datasets.zoo import load_zoo_graph


def main() -> None:
    g = load_zoo_graph("TT")
    print(f"graph: {g}\n")
    rng = np.random.default_rng(5)
    sources = rng.choice(np.flatnonzero(g.out_degree() > 0), 5, replace=False)

    for spec in (SSWP, SSNP):
        cg = build_core_graph(g, spec, num_hubs=20)
        plain_edges = tri_edges = certified = 0
        for s in sources:
            s = int(s)
            truth = evaluate_query(g, spec, s)
            plain = two_phase(g, cg, spec, s)
            tri = two_phase(g, cg, spec, s, triangle=True)
            assert np.array_equal(plain.values, truth)
            assert np.array_equal(tri.values, truth)
            plain_edges += plain.phase2.edges_processed
            tri_edges += tri.phase2.edges_processed
            certified += tri.certified_precise
        n = g.num_vertices * len(sources)
        print(f"{spec.name}: CG has {100 * cg.edge_fraction:.1f}% of edges")
        print(f"   certificates issued: {certified:,} "
              f"({100 * certified / n:.1f}% of vertex results)")
        print(f"   completion-phase edge visits: {plain_edges:,} -> "
              f"{tri_edges:,} "
              f"({100 * (1 - tri_edges / max(1, plain_edges)):.1f}% saved)\n")


if __name__ == "__main__":
    main()
